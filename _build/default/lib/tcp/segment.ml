open Pfi_stack

type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
}

let no_flags = { syn = false; ack = false; fin = false; rst = false; psh = false }
let flag_ack = { no_flags with ack = true }
let flag_syn = { no_flags with syn = true }
let flag_syn_ack = { no_flags with syn = true; ack = true }
let flag_rst = { no_flags with rst = true }
let flag_fin_ack = { no_flags with fin = true; ack = true }

type t = {
  src_port : int;
  dst_port : int;
  seq : Seq32.t;
  ack : Seq32.t;
  flags : flags;
  window : int;
  payload : Bytes.t;
}

let make ?(payload = Bytes.empty) ~src_port ~dst_port ~seq ~ack ~flags ~window () =
  { src_port; dst_port; seq; ack; flags; window; payload }

let len t = Bytes.length t.payload

let seq_span t =
  len t + (if t.flags.syn then 1 else 0) + (if t.flags.fin then 1 else 0)

let header_size = 20

let flags_to_bits f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0)

let flags_of_bits bits =
  { fin = bits land 0x01 <> 0;
    syn = bits land 0x02 <> 0;
    rst = bits land 0x04 <> 0;
    psh = bits land 0x08 <> 0;
    ack = bits land 0x10 <> 0 }

(* 16-bit ones' complement sum over the buffer, checksum field zeroed. *)
let compute_checksum data =
  let n = Bytes.length data in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    if !i <> 16 then begin
      (* skip the checksum field itself (bytes 16-17) *)
      let word =
        (Char.code (Bytes.get data !i) lsl 8) lor Char.code (Bytes.get data (!i + 1))
      in
      sum := !sum + word
    end;
    i := !i + 2
  done;
  if !i < n then sum := !sum + (Char.code (Bytes.get data !i) lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let encode t =
  let w = Bytes_codec.writer () in
  Bytes_codec.u16 w t.src_port;
  Bytes_codec.u16 w t.dst_port;
  Bytes_codec.u32_of_int w t.seq;
  Bytes_codec.u32_of_int w t.ack;
  (* data offset (5 words) in the high nibble, flags in the low byte *)
  Bytes_codec.u16 w ((5 lsl 12) lor flags_to_bits t.flags);
  Bytes_codec.u16 w t.window;
  Bytes_codec.u16 w 0 (* checksum placeholder *);
  Bytes_codec.u16 w 0 (* urgent pointer *);
  Bytes_codec.bytes w t.payload;
  let data = Bytes_codec.contents w in
  let csum = compute_checksum data in
  Bytes.set data 16 (Char.chr ((csum lsr 8) land 0xff));
  Bytes.set data 17 (Char.chr (csum land 0xff));
  data

let stored_checksum data =
  (Char.code (Bytes.get data 16) lsl 8) lor Char.code (Bytes.get data 17)

let checksum_valid data =
  Bytes.length data >= header_size && stored_checksum data = compute_checksum data

let decode data =
  if Bytes.length data < header_size then Error "segment too short"
  else if not (checksum_valid data) then Error "bad checksum"
  else begin
    let r = Bytes_codec.reader data in
    let src_port = Bytes_codec.read_u16 r in
    let dst_port = Bytes_codec.read_u16 r in
    let seq = Bytes_codec.read_u32_int r in
    let ack = Bytes_codec.read_u32_int r in
    let off_flags = Bytes_codec.read_u16 r in
    let window = Bytes_codec.read_u16 r in
    let _checksum = Bytes_codec.read_u16 r in
    let _urgent = Bytes_codec.read_u16 r in
    let payload = Bytes_codec.read_rest r in
    Ok
      { src_port; dst_port; seq; ack;
        flags = flags_of_bits (off_flags land 0x3f);
        window; payload }
  end

let proto_attr_value = "tcp"

let to_message t ~dst =
  let msg = Message.create (encode t) in
  Message.set_attr msg Pfi_netsim.Network.dst_attr dst;
  Message.set_attr msg "proto" proto_attr_value;
  msg

let of_message msg = decode (Message.payload msg)

let kind t =
  if t.flags.rst then "RST"
  else if t.flags.syn && t.flags.ack then "SYN-ACK"
  else if t.flags.syn then "SYN"
  else if t.flags.fin then "FIN"
  else if len t > 0 then "DATA"
  else if t.flags.ack then "ACK"
  else "OTHER"

let describe t =
  Printf.sprintf "%s %d>%d seq=%d ack=%d win=%d len=%d" (kind t) t.src_port
    t.dst_port t.seq t.ack t.window (len t)

let pp ppf t = Format.pp_print_string ppf (describe t)
