(** The TCP engine.

    One {!t} is a host's TCP: it owns a stack layer, demultiplexes
    segments to connections, and implements the transmission policies
    the paper probes — timeout/retransmission with exponential backoff,
    Jacobson/Karn RTO estimation, keep-alive, zero-window (persist)
    probing, out-of-order queueing and reset generation — all
    parameterised by a vendor {!Profile.t}.

    The application ("driver" in the paper's terms) interacts through
    {!connect}/{!listen}, {!send}, {!read} and callbacks.  With
    {!set_auto_consume} off, received data stays in the receive buffer
    and closes the advertised window — the lever the zero-window-probe
    experiment uses. *)

open Pfi_engine

type t
type conn

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait

val state_to_string : state -> string

(** {1 Host setup} *)

val create : sim:Sim.t -> node:string -> profile:Profile.t -> unit -> t
(** The returned host owns a layer ({!layer}) to be placed at the top of
    a stack; segments it emits carry the destination in
    {!Pfi_netsim.Network.dst_attr}. *)

val layer : t -> Pfi_stack.Layer.t
val node : t -> string
val profile : t -> Profile.t

(** {1 Connections} *)

val listen : t -> port:int -> unit
val on_accept : t -> (conn -> unit) -> unit

val connect : t -> dst:string -> dst_port:int -> ?src_port:int -> unit -> conn
(** Active open; the three-way handshake proceeds in simulated time.
    [src_port] defaults to an ephemeral port. *)

val close : conn -> unit
(** Orderly release (FIN). *)

val abort : conn -> unit
(** Sends RST and closes immediately. *)

val state : conn -> state
val on_state_change : conn -> (state -> unit) -> unit
val on_data : conn -> (string -> unit) -> unit
(** Called when data is delivered in order.  With auto-consume on
    (default) the data is also removed from the receive buffer. *)

(** {1 Data transfer} *)

val send : conn -> string -> unit
(** Queues application data for transmission. *)

val read : conn -> int -> string
(** Consumes up to [n] bytes from the receive buffer, re-opening the
    advertised window (sends a window update if the window was closed). *)

val pending_receive : conn -> int
(** Bytes sitting unconsumed in the receive buffer. *)

val set_auto_consume : conn -> bool -> unit
(** Off: received data accumulates until {!read} — the advertised
    window shrinks and eventually closes. *)

val set_keepalive : conn -> bool -> unit

(** {1 Introspection (for experiments and tests)} *)

val local_port : conn -> int
val remote : conn -> string * int
val snd_una : conn -> int
val snd_nxt : conn -> int
val rcv_nxt : conn -> int
val advertised_window : conn -> int
val peer_window : conn -> int
val congestion_window : conn -> int
val slow_start_threshold : conn -> int
val current_rto : conn -> Vtime.t
(** The effective retransmission timeout (after backoff and clamping)
    that the next retransmission timer will use. *)

val srtt : conn -> Vtime.t option
val backoff_shift : conn -> int
val error_counter : conn -> int
(** Solaris-style global counter (always maintained; only consulted for
    the give-up decision when the profile enables it). *)

val segment_retries : conn -> int
val total_retransmits : conn -> int
val keepalive_probes_sent : conn -> int
val close_reason : conn -> string option
(** Why the connection reached [Closed] (e.g. ["rexmt-exhausted"],
    ["keepalive-exhausted"], ["reset-received"], ["user-abort"]). *)

(** {1 Trace tags}

    The engine records these tags in the simulation trace (node = host):
    [tcp.out] every transmitted segment; [tcp.in] every segment accepted
    by a connection; [tcp.retransmit] data retransmissions;
    [tcp.keepalive-probe] and [tcp.persist-probe] probes;
    [tcp.rst-sent]; [tcp.state] state transitions; [tcp.closed] with the
    close reason. *)
