(** Minimal IP-style network layer.

    In the paper's x-Kernel stack the PFI layer sits between TCP and IP;
    this layer reproduces that boundary.  On the way down it wraps the
    segment in a small header carrying source/destination node names and
    a TTL; on the way up it strips the header, discards packets not
    addressed to this node, and drops packets whose TTL is exhausted.
    The PFI layer spliced {e above} it therefore sees bare TCP segments,
    exactly as in Figure 3 of the paper. *)

val header_size : int

val create : node:string -> Pfi_stack.Layer.t
(** The downward path requires the message to carry the
    {!Pfi_netsim.Network.dst_attr} attribute. *)

val decode_header : Bytes.t -> (string * string * int, string) result
(** [(src, dst, ttl)] from an encoded header. *)
