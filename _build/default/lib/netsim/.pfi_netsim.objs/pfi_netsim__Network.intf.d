lib/netsim/network.mli: Pfi_engine Pfi_stack
