lib/netsim/network.ml: Hashtbl Int64 Layer List Message Pfi_engine Pfi_stack Printf Rng Sim String Vtime
