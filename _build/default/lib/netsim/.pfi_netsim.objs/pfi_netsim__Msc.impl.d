lib/netsim/msc.ml: Format List Option Pfi_engine Printf String Trace Vtime
