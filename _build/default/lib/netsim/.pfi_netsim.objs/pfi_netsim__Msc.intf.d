lib/netsim/msc.mli: Format Pfi_engine
