(** Message-sequence-chart rendering from network traces.

    The paper presents its global-error-counter discovery as a ladder
    diagram (A and B exchanging m1, ACKs and retransmissions).  This
    module regenerates such diagrams: when {!Network.set_msc_enabled} is
    on, every transmission records an [msc] trace entry carrying source,
    destination, arrival time and a label (protocols may set the
    {!label_attr} message attribute; otherwise the payload size is
    shown); {!render} lays the entries out as a two-column ladder, or as
    "src -> dst" event lines for wider topologies. *)

val label_attr : string
(** ["msc.label"]: set on a message to control how it appears. *)

type event = {
  time : Pfi_engine.Vtime.t;  (** transmission time *)
  arrival : Pfi_engine.Vtime.t option;  (** None when dropped *)
  src : string;
  dst : string;
  label : string;
}

val events : ?between:string list -> Pfi_engine.Trace.t -> event list
(** Parses [msc] entries out of a trace; [between] filters to messages
    whose endpoints are both in the list. *)

val render :
  ?max_label:int -> nodes:string list -> Format.formatter -> event list -> unit
(** Two nodes: a ladder with arrows; more: one line per event. *)

val render_trace :
  ?between:string list -> Pfi_engine.Trace.t -> Format.formatter -> unit -> unit
(** Convenience: {!events} + {!render} with nodes inferred. *)
