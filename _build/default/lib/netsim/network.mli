(** Simulated network fabric.

    One {!t} models the broadcast domain the paper's testbed machines
    shared.  Each node attaches a {e device layer} that forms the bottom
    of its protocol stack: messages pushed down into it are transmitted
    to the destination named by the message's [net.dst] attribute and
    popped out of the destination's device layer after the link latency.

    Physical faults live here — latency, probabilistic link loss,
    directional blocking, partitions, and unplugging a machine's
    Ethernet (the paper's two-day zero-window experiment).  Protocol-level
    faults belong to the PFI layer, not the network. *)

type t

val create : ?default_latency:Pfi_engine.Vtime.t -> Pfi_engine.Sim.t -> t
(** [default_latency] defaults to 1 ms. *)

val sim : t -> Pfi_engine.Sim.t

(** {1 Topology} *)

val attach : t -> node:string -> Pfi_stack.Layer.t
(** Creates, registers and returns the device layer for [node].
    @raise Failure if the node is already attached. *)

val nodes : t -> string list

(** {1 Addressing attributes} *)

val dst_attr : string
(** ["net.dst"]: set on a message before pushing it down to the device
    layer.  The value is a destination node name, or {!broadcast}. *)

val src_attr : string
(** ["net.src"]: stamped by the network on delivery. *)

val broadcast : string
(** ["*"]: deliver to every other attached node. *)

(** {1 Link properties} *)

val set_default_latency : t -> Pfi_engine.Vtime.t -> unit
val set_latency : t -> src:string -> dst:string -> Pfi_engine.Vtime.t -> unit
val set_jitter : t -> src:string -> dst:string -> Pfi_engine.Vtime.t -> unit
(** Adds uniform random jitter in [0, span] to each transmission on the
    link (drawn from the simulation's RNG). *)

val set_loss : t -> src:string -> dst:string -> float -> unit
(** Probabilistic loss rate in [0, 1] for the directed link. *)

(** {1 Physical faults} *)

val block : t -> src:string -> dst:string -> unit
(** Silently discard traffic on the directed link. *)

val unblock : t -> src:string -> dst:string -> unit

val partition : t -> string list list -> unit
(** Installs a partition: traffic is delivered only within a group.
    Nodes not listed form an implicit extra group.  Replaces any
    previous partition. *)

val heal : t -> unit
(** Removes the partition. *)

val unplug : t -> string -> unit
(** Disconnects the node entirely (no send, no receive). *)

val replug : t -> string -> unit

val is_unplugged : t -> string -> bool

(** {1 Statistics} *)

val sent_count : t -> int
val delivered_count : t -> int
val dropped_count : t -> int

val set_trace_enabled : t -> bool -> unit
(** When on, every send/deliver/drop is recorded in the simulation
    trace under tags [net.send] / [net.deliver] / [net.drop]. *)

val set_msc_enabled : t -> bool -> unit
(** When on, every transmission records an [msc] trace entry for
    {!Msc.render} (labels come from the [msc.label] message
    attribute). *)
