open Pfi_stack

type mtype =
  | Heartbeat
  | Proclaim
  | Join
  | Membership_change
  | Mc_ack
  | Mc_nak
  | Commit
  | Dead

type t = {
  mtype : mtype;
  origin : int;
  sender : int;
  group_id : int;
  subject : int;
  members : int list;
}

let make ~mtype ~origin ~sender ?(group_id = 0) ?(subject = 0) ?(members = []) () =
  { mtype; origin; sender; group_id; subject; members }

let mtype_to_string = function
  | Heartbeat -> "HEARTBEAT"
  | Proclaim -> "PROCLAIM"
  | Join -> "JOIN"
  | Membership_change -> "MEMBERSHIP_CHANGE"
  | Mc_ack -> "ACK"
  | Mc_nak -> "NAK"
  | Commit -> "COMMIT"
  | Dead -> "DEAD"

let mtype_of_string = function
  | "HEARTBEAT" -> Some Heartbeat
  | "PROCLAIM" -> Some Proclaim
  | "JOIN" -> Some Join
  | "MEMBERSHIP_CHANGE" -> Some Membership_change
  | "ACK" -> Some Mc_ack
  | "NAK" -> Some Mc_nak
  | "COMMIT" -> Some Commit
  | "DEAD" -> Some Dead
  | _ -> None

let mtype_code = function
  | Heartbeat -> 1
  | Proclaim -> 2
  | Join -> 3
  | Membership_change -> 4
  | Mc_ack -> 5
  | Mc_nak -> 6
  | Commit -> 7
  | Dead -> 8

let mtype_of_code = function
  | 1 -> Some Heartbeat
  | 2 -> Some Proclaim
  | 3 -> Some Join
  | 4 -> Some Membership_change
  | 5 -> Some Mc_ack
  | 6 -> Some Mc_nak
  | 7 -> Some Commit
  | 8 -> Some Dead
  | _ -> None

let encode t =
  let w = Bytes_codec.writer () in
  Bytes_codec.u8 w (mtype_code t.mtype);
  Bytes_codec.u16 w t.origin;
  Bytes_codec.u16 w t.sender;
  Bytes_codec.u32_of_int w t.group_id;
  Bytes_codec.u16 w t.subject;
  Bytes_codec.u16 w (List.length t.members);
  List.iter (fun m -> Bytes_codec.u16 w m) t.members;
  Bytes_codec.contents w

let decode data =
  match
    let r = Bytes_codec.reader data in
    let code = Bytes_codec.read_u8 r in
    let origin = Bytes_codec.read_u16 r in
    let sender = Bytes_codec.read_u16 r in
    let group_id = Bytes_codec.read_u32_int r in
    let subject = Bytes_codec.read_u16 r in
    let count = Bytes_codec.read_u16 r in
    let members = List.init count (fun _ -> Bytes_codec.read_u16 r) in
    (code, origin, sender, group_id, subject, members)
  with
  | exception Bytes_codec.Truncated _ -> Error "gmp: truncated message"
  | code, origin, sender, group_id, subject, members ->
    (match mtype_of_code code with
     | None -> Error (Printf.sprintf "gmp: unknown message type %d" code)
     | Some mtype -> Ok { mtype; origin; sender; group_id; subject; members })

let to_message t ~dst =
  let msg = Message.create (encode t) in
  Message.set_attr msg Pfi_netsim.Network.dst_attr dst;
  Message.set_attr msg "proto" "gmp";
  msg

let of_message msg = decode (Message.payload msg)

let describe t =
  let members =
    if t.members = [] then ""
    else
      Printf.sprintf " members=[%s]"
        (String.concat "," (List.map string_of_int t.members))
  in
  let subject = if t.subject = 0 then "" else Printf.sprintf " subject=%d" t.subject in
  Printf.sprintf "%s origin=%d sender=%d gid=%d%s%s" (mtype_to_string t.mtype)
    t.origin t.sender t.group_id subject members
