(** The group membership daemon (gmd).

    Implements the strong group membership protocol the paper tests: a
    group has a unique leader (the member with the lowest id, mirroring
    "lowest IP address"); membership changes run a two-phase protocol
    (MEMBERSHIP_CHANGE → ACK/NAK → COMMIT) so that all members see
    changes in the same order; members in between the two phases are
    {e in transition}.  Failure detection is heartbeat-based: every
    member heartbeats every group member (including itself, through the
    full stack — which is how the self-death experiment can drop them);
    an expired heartbeat-expect timer declares the peer dead.  Nodes
    outside a full group send PROCLAIM messages; members forward
    proclaims to their leader; leaders respond with PROCLAIM or JOIN
    depending on id order.

    The three implementation faults the paper's experiments uncovered
    are re-implanted behind {!bugs} flags so the experiments can find
    them again (and show the fixed behaviour with flags off). *)

open Pfi_engine

type bugs = {
  self_death : bool;
      (** Table 5: on missing own heartbeats, broadcast DEAD(self) and
          mark self down {e without} forming a singleton; while in this
          state, proclaim forwarding silently fails (the wrong-parameter
          bug). *)
  proclaim_reply_to_sender : bool;
      (** Table 7: the leader answers a forwarded PROCLAIM to its
          transport sender (the forwarder) instead of its originator,
          creating the proclaim loop. *)
  timer_unset_inverted : bool;
      (** Table 8: the unset-all-timeouts call has its NULL test
          inverted, so entering IN_TRANSITION cancels only the first
          heartbeat-expect timer instead of all of them. *)
}

val no_bugs : bugs
val all_bugs : bugs

type config = {
  hb_interval : Vtime.t;  (** heartbeat period (default 2 s) *)
  hb_timeout : Vtime.t;  (** expect-timer deadline (default 7 s) *)
  proclaim_interval : Vtime.t;  (** proclaim period when seeking a group (8 s) *)
  mc_collect : Vtime.t;  (** leader's ACK-collection timeout (3 s) *)
  mc_timeout : Vtime.t;  (** member's wait-for-COMMIT timeout (15 s) *)
  bugs : bugs;
}

val default_config : config

type view = {
  group_id : int;
  members : int list;  (** sorted ascending; the head is the leader *)
  leader : int;
}

type phase = Normal | In_transition

type t

val create :
  sim:Sim.t -> node:string -> id:int -> peers:(string * int) list ->
  ?config:config -> unit -> t
(** [peers] maps every other node's name to its id (the "potential
    members" universe). *)

val layer : t -> Pfi_stack.Layer.t
(** Top of the daemon's stack; place a reliable layer (and a PFI layer)
    beneath it. *)

val start : t -> unit
(** Boots the daemon: it forms a singleton group and starts
    proclaiming. *)

val stop : t -> unit
(** Halts all timers (process shutdown). *)

val suspend : t -> unit
(** Freezes the daemon without disarming timers, like typing Ctrl-Z on
    the running gmd: incoming messages are ignored and periodic work
    stops while suspended. *)

val resume : t -> unit

(** {1 Introspection} *)

val id : t -> int
val node : t -> string
val view : t -> view
val phase : t -> phase
val is_leader : t -> bool
val crown_prince : t -> int option
(** Second-lowest member id, next in line for leadership. *)

val self_marked_down : t -> bool
(** True only in the buggy self-death state. *)

val armed_timers : t -> string list
(** Names of currently armed timers — what the Table 8 experiment
    inspects ("no timers except the membership change timer should be
    set"). *)

val view_history : t -> view list
(** Every view this daemon has committed, oldest first. *)

(** {1 Trace tags}

    [gmp.view] committed view adoptions; [gmp.transition] entering
    IN_TRANSITION; [gmp.singleton] singleton formation; [gmp.dead]
    declaring a member dead; [gmp.self-dead] the buggy self-death;
    [gmp.proclaim-fwd] forwarding; [gmp.fwd-dropped] the silent
    forwarding failure; [gmp.spurious-timeout] an expect timer firing
    during IN_TRANSITION; [gmp.send] every protocol message sent. *)
