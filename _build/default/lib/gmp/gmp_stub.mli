(** Packet recognition/generation stub for GMP over the reliable layer.

    The PFI layer in the GMP experiments sits where the UDP send/receive
    calls are made, i.e. {e below} the reliable layer — so what it sees
    are rel-layer packets.  This stub looks through the rel header:
    [msg_type] yields the inner GMP type (["HEARTBEAT"], ["PROCLAIM"],
    ["JOIN"], ["MEMBERSHIP_CHANGE"], ["ACK"], ["NAK"], ["COMMIT"],
    ["DEAD"]) or ["RACK"] for a rel-layer acknowledgement; [msg_field]
    reads [origin sender gid subject members relseq]; [msg_gen]
    fabricates spontaneous GMP messages (wrapped as unreliable rel
    packets) for probing. *)

val stub : Pfi_core.Stubs.t

val register : unit -> unit
