lib/gmp/rel_udp.mli: Bytes Pfi_engine Pfi_stack Sim Vtime
