lib/gmp/rel_udp.ml: Bytes Bytes_codec Char Hashtbl Layer List Message Option Pfi_engine Pfi_netsim Pfi_stack Printf Sim Timer Vtime
