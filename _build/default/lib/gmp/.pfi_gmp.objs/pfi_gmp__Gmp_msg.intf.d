lib/gmp/gmp_msg.mli: Bytes Pfi_stack
