lib/gmp/gmd.ml: Gmp_msg Hashtbl Layer List Message Pfi_engine Pfi_stack Printf Rel_udp Sim String Timer Vtime
