lib/gmp/gmp_stub.ml: Gmp_msg List Message Option Pfi_core Pfi_netsim Pfi_stack Printf Rel_udp String
