lib/gmp/gmp_stub.mli: Pfi_core
