lib/gmp/gmp_msg.ml: Bytes_codec List Message Pfi_netsim Pfi_stack Printf String
