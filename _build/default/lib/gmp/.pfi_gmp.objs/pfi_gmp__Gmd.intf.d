lib/gmp/gmd.mli: Pfi_engine Pfi_stack Sim Vtime
