(** Tcl list syntax.

    A Tcl list is a string whose elements are separated by whitespace;
    elements containing whitespace or special characters are wrapped in
    braces.  These helpers convert between that surface syntax and OCaml
    string lists, so host commands can accept and return structured data. *)

val to_list : string -> string list
(** Splits a list-syntax string into elements, honouring brace and quote
    grouping.  Raises {!Parser.Parse_error} on unbalanced input. *)

val of_list : string list -> string
(** Renders elements back to list syntax, brace-quoting where needed.
    [to_list (of_list l) = l] for all [l]. *)

val quote_element : string -> string
(** Quotes a single element so it survives a round trip. *)

val index : string -> int -> string option
val length : string -> int
val append : string -> string -> string
(** [append list elem] adds one element (quoting it). *)

val range : string -> int -> int -> string
(** [range list first last], inclusive, clamped; Tcl's [lrange]. *)
