let create ?output () =
  let t = Interp.create ?output () in
  Builtins.install t;
  t

let eval = Interp.eval

let eval_capture t src =
  let buf = Buffer.create 64 in
  let saved = Interp.get_output t in
  Interp.set_output t (Buffer.add_string buf);
  let restore () = Interp.set_output t saved in
  match Interp.eval t src with
  | result -> restore (); (result, Buffer.contents buf)
  | exception e -> restore (); raise e
