(** The script interpreter.

    An interpreter is, as in Tcl, "an object which contains some state
    about variables and procedures which have been defined"; evaluating a
    script in it may read and update that state, which is how filter
    scripts keep counters and mode flags across messages.  Host code
    (the PFI layer, test drivers) extends the language by registering
    commands — the OCaml analogue of the paper's C-coded utility
    procedures linked into the tool. *)

type t

exception Script_error of string
(** A runtime script error (unknown command, unset variable, arity
    mismatch, [error] command).  Catchable from script code via
    [catch]. *)

val create : ?output:(string -> unit) -> unit -> t
(** [output] receives everything [puts] prints; defaults to [stdout].
    The interpreter starts with {e no} commands registered; use
    {!Script.create} for one with the standard library installed. *)

val set_output : t -> (string -> unit) -> unit
val get_output : t -> string -> unit
(** The current sink, partially applied: [get_output t] is the function
    [puts] writes through. *)

(** {1 Evaluation} *)

val eval : t -> string -> string
(** Parses and evaluates a script; the result is the result of its last
    command (the empty string for an empty script). *)

val compile : string -> Ast.script
(** Parse once; useful for per-message filter scripts. *)

val eval_compiled : t -> Ast.script -> string

val call : t -> string -> string list -> string
(** Invokes a command or proc by name with pre-expanded arguments. *)

val subst_string : t -> string -> string
(** Performs [$var], [\[cmd\]] and backslash substitution on a string
    without word splitting (Tcl's [subst]). *)

val subst_expr : t -> string -> string
(** Like {!subst_string} but substituted non-numeric values are
    brace-quoted so they read back as single string literals inside
    {!Expr} — used for [expr] and control-flow conditions. *)

val eval_expr : t -> string -> Expr.value
val eval_expr_bool : t -> string -> bool

(** {1 Variables} *)

val get_var : t -> string -> string option
val get_var_exn : t -> string -> string
val set_var : t -> string -> string -> unit
val unset_var : t -> string -> unit
val var_exists : t -> string -> bool

val set_global : t -> string -> string -> unit
(** Writes the global frame regardless of any proc frame in scope —
    how host code publishes state into the interpreter. *)

val get_global : t -> string -> string option

(** {1 Commands} *)

val register : t -> string -> (t -> string list -> string) -> unit
(** Registering over an existing name replaces it. *)

val unregister : t -> string -> unit
val has_command : t -> string -> bool
val command_names : t -> string list

(** {1 Control-flow internals}

    Exposed for {!Builtins}; host commands may also raise these to
    participate in control flow. *)

exception Return_exn of string
exception Break_exn
exception Continue_exn

val error : string -> 'a
(** Raises {!Script_error}. *)

val errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Frames} *)

val push_frame : t -> unit
val pop_frame : t -> unit
val mark_global : t -> string -> unit
(** Links a name in the current frame to the global frame ([global]). *)

(** {1 Procs} *)

type proc = { params : (string * string option) list; varargs : bool; body : Ast.script }

val define_proc : t -> string -> proc -> unit
val find_proc : t -> string -> proc option
val proc_names : t -> string list

val output : t -> string -> unit
(** Sends text to the interpreter's output sink. *)
