(** Parsed form of a script.

    Following Tcl, parsing only splits a script into commands and words and
    records where substitution must happen; all values remain strings until
    evaluation.  A [Braced] word suppresses substitution entirely, which is
    how control-flow bodies (and the paper's filter scripts) are quoted. *)

type token =
  | Lit of string      (** literal text *)
  | Var_ref of string  (** [$name] or [${name}] *)
  | Cmd_sub of string  (** [\[script\]], evaluated at substitution time *)

type word =
  | Braced of string   (** [{...}]: taken verbatim *)
  | Tokens of token list  (** bare or quoted word: tokens concatenate *)

type command = word list

type script = command list
