open Interp

let arity name spec = errorf "wrong # args: should be \"%s %s\"" name spec

(* ------------------------------------------------------------------ *)
(* Variables                                                          *)
(* ------------------------------------------------------------------ *)

let cmd_set t = function
  | [ name ] -> get_var_exn t name
  | [ name; value ] -> set_var t name value; value
  | _ -> arity "set" "varName ?newValue?"

let cmd_unset t args =
  match args with
  | [] -> arity "unset" "varName ?varName ...?"
  | names -> List.iter (unset_var t) names; ""

let cmd_incr t = function
  | [ name ] | [ name; _ ] as args ->
    let amount =
      match args with
      | [ _; by ] ->
        (match int_of_string_opt by with
         | Some i -> i
         | None -> errorf "expected integer but got %S" by)
      | _ -> 1
    in
    let current =
      match get_var t name with
      | None -> 0
      | Some v ->
        (match int_of_string_opt v with
         | Some i -> i
         | None -> errorf "expected integer but got %S" v)
    in
    let updated = string_of_int (current + amount) in
    set_var t name updated;
    updated
  | _ -> arity "incr" "varName ?increment?"

let cmd_append t = function
  | name :: parts when parts <> [] ->
    let base = Option.value (get_var t name) ~default:"" in
    let v = base ^ String.concat "" parts in
    set_var t name v;
    v
  | _ -> arity "append" "varName value ?value ...?"

let cmd_global t args =
  List.iter (mark_global t) args;
  ""

let cmd_subst t = function
  | [ s ] -> subst_string t s
  | _ -> arity "subst" "string"

(* ------------------------------------------------------------------ *)
(* Expressions and control flow                                       *)
(* ------------------------------------------------------------------ *)

let cmd_expr t args =
  match args with
  | [] -> arity "expr" "arg ?arg ...?"
  | args -> Expr.to_string (eval_expr t (String.concat " " args))

let cmd_if t args =
  (* if cond ?then? body ?elseif cond ?then? body?* ?else? ?body? *)
  let rec go = function
    | cond :: rest -> begin
      let rest = match rest with "then" :: r -> r | r -> r in
      match rest with
      | body :: rest ->
        if eval_expr_bool t cond then eval t body
        else begin
          match rest with
          | [] -> ""
          | "elseif" :: rest -> go rest
          | "else" :: [ body ] -> eval t body
          | [ body ] -> eval t body
          | _ -> arity "if" "cond ?then? body ?elseif cond body ...? ?else body?"
        end
      | [] -> arity "if" "cond ?then? body"
    end
    | [] -> arity "if" "cond ?then? body"
  in
  go args

(* filter scripts run inside a simulator event: a runaway loop would
   hang the whole experiment, so loops are capped *)
let max_loop_iterations = 1_000_000

let guarded_loop name body =
  let iterations = ref 0 in
  let step () =
    incr iterations;
    if !iterations > max_loop_iterations then
      errorf "%s: exceeded %d iterations (runaway loop?)" name max_loop_iterations
  in
  try body step with Break_exn -> ()

let cmd_while t = function
  | [ cond; body ] ->
    guarded_loop "while" (fun step ->
        while eval_expr_bool t cond do
          step ();
          match eval t body with
          | _ -> ()
          | exception Continue_exn -> ()
        done);
    ""
  | _ -> arity "while" "test command"

let cmd_for t = function
  | [ init; cond; next; body ] ->
    ignore (eval t init);
    guarded_loop "for" (fun step ->
        while eval_expr_bool t cond do
          step ();
          (match eval t body with
           | _ -> ()
           | exception Continue_exn -> ());
          ignore (eval t next)
        done);
    ""
  | _ -> arity "for" "start test next command"

let cmd_foreach t = function
  | [ var; list; body ] ->
    (try
       List.iter
         (fun element ->
           set_var t var element;
           match eval t body with
           | _ -> ()
           | exception Continue_exn -> ())
         (Tcl_list.to_list list)
     with Break_exn -> ());
    ""
  | _ -> arity "foreach" "varName list command"

let cmd_break _ = function
  | [] -> raise Break_exn
  | _ -> arity "break" ""

let cmd_continue _ = function
  | [] -> raise Continue_exn
  | _ -> arity "continue" ""

let cmd_return _ = function
  | [] -> raise (Return_exn "")
  | [ v ] -> raise (Return_exn v)
  | _ -> arity "return" "?value?"

let cmd_error _ = function
  | [ msg ] -> error msg
  | msg :: _ -> error msg
  | [] -> arity "error" "message"

let cmd_catch t = function
  | [ script ] | [ script; _ ] as args ->
    let store result =
      match args with
      | [ _; var ] -> set_var t var result
      | _ -> ()
    in
    (match eval t script with
     | result -> store result; "0"
     | exception Script_error msg -> store msg; "1"
     | exception Return_exn v -> store v; "2"
     | exception Break_exn -> store ""; "3"
     | exception Continue_exn -> store ""; "4")
  | _ -> arity "catch" "script ?varName?"

let cmd_eval t = function
  | [] -> arity "eval" "arg ?arg ...?"
  | args -> eval t (String.concat " " args)

let cmd_proc t = function
  | [ name; params; body ] ->
    let param_list = Tcl_list.to_list params in
    let rec build acc = function
      | [] -> (List.rev acc, false)
      | [ "args" ] -> (List.rev acc, true)
      | p :: rest ->
        (match Tcl_list.to_list p with
         | [ pname; default ] -> build ((pname, Some default) :: acc) rest
         | [ pname ] -> build ((pname, None) :: acc) rest
         | _ -> errorf "bad parameter specification %S in proc %S" p name)
    in
    let params, varargs = build [] param_list in
    define_proc t name { params; varargs; body = compile body };
    ""
  | _ -> arity "proc" "name args body"

(* glob matching for [string match]: *, ? and literal characters *)
let rec glob_match pattern p s_str s =
  let plen = String.length pattern and slen = String.length s_str in
  if p >= plen then s >= slen
  else
    match pattern.[p] with
    | '*' ->
      glob_match pattern (p + 1) s_str s
      || (s < slen && glob_match pattern p s_str (s + 1))
    | '?' -> s < slen && glob_match pattern (p + 1) s_str (s + 1)
    | '\\' when p + 1 < plen ->
      s < slen && pattern.[p + 1] = s_str.[s]
      && glob_match pattern (p + 2) s_str (s + 1)
    | ch -> s < slen && ch = s_str.[s] && glob_match pattern (p + 1) s_str (s + 1)

let cmd_switch t args =
  let glob, args =
    match args with
    | "-glob" :: rest -> (true, rest)
    | "--" :: rest -> (false, rest)
    | rest -> (false, rest)
  in
  let value, clauses =
    match args with
    | [ value; block ] -> (value, Tcl_list.to_list block)
    | value :: rest when List.length rest >= 2 -> (value, rest)
    | _ -> arity "switch" "?-glob? string {pattern body ?pattern body ...?}"
  in
  let rec pairs = function
    | [] -> []
    | pattern :: body :: rest -> (pattern, body) :: pairs rest
    | [ _ ] -> errorf "switch: extra pattern with no body"
  in
  let matches pattern =
    String.equal pattern "default"
    || (if glob then glob_match pattern 0 value 0 else String.equal pattern value)
  in
  let rec go = function
    | [] -> ""
    | (pattern, body) :: rest -> if matches pattern then eval t body else go rest
  in
  go (pairs clauses)

(* ------------------------------------------------------------------ *)
(* Lists                                                              *)
(* ------------------------------------------------------------------ *)

let int_arg name s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> errorf "%s: expected integer but got %S" name s

let cmd_list _ args = Tcl_list.of_list args

let cmd_lindex _ = function
  | [ list; i ] ->
    Option.value (Tcl_list.index list (int_arg "lindex" i)) ~default:""
  | _ -> arity "lindex" "list index"

let cmd_llength _ = function
  | [ list ] -> string_of_int (Tcl_list.length list)
  | _ -> arity "llength" "list"

let cmd_lappend t = function
  | name :: elements when elements <> [] ->
    let base = Option.value (get_var t name) ~default:"" in
    let v = List.fold_left Tcl_list.append base elements in
    set_var t name v;
    v
  | _ -> arity "lappend" "varName value ?value ...?"

let cmd_lrange _ = function
  | [ list; first; last ] ->
    let parse_end s = if s = "end" then max_int else int_arg "lrange" s in
    Tcl_list.range list (int_arg "lrange" first) (parse_end last)
  | _ -> arity "lrange" "list first last"

let cmd_lsort _ = function
  | [ list ] -> Tcl_list.of_list (List.sort compare (Tcl_list.to_list list))
  | [ "-integer"; list ] ->
    let by_int a b =
      compare
        (Option.value (int_of_string_opt a) ~default:0)
        (Option.value (int_of_string_opt b) ~default:0)
    in
    Tcl_list.of_list (List.sort by_int (Tcl_list.to_list list))
  | _ -> arity "lsort" "?-integer? list"

let cmd_lreverse _ = function
  | [ list ] -> Tcl_list.of_list (List.rev (Tcl_list.to_list list))
  | _ -> arity "lreverse" "list"

let cmd_lrepeat _ = function
  | count :: (_ :: _ as elements) ->
    let n = int_arg "lrepeat" count in
    Tcl_list.of_list (List.concat (List.init (max 0 n) (fun _ -> elements)))
  | _ -> arity "lrepeat" "count element ?element ...?"

let cmd_lsearch _ = function
  | [ list; pattern ] ->
    let elements = Tcl_list.to_list list in
    let rec find i = function
      | [] -> -1
      | e :: rest -> if String.equal e pattern then i else find (i + 1) rest
    in
    string_of_int (find 0 elements)
  | _ -> arity "lsearch" "list pattern"

let cmd_concat _ args =
  String.concat " " (List.filter (fun s -> String.trim s <> "") (List.map String.trim args))

let cmd_join _ = function
  | [ list ] -> String.concat " " (Tcl_list.to_list list)
  | [ list; sep ] -> String.concat sep (Tcl_list.to_list list)
  | _ -> arity "join" "list ?joinString?"

let cmd_split _ = function
  | [ s ] ->
    Tcl_list.of_list
      (String.split_on_char ' ' s
       |> List.concat_map (String.split_on_char '\t')
       |> List.concat_map (String.split_on_char '\n')
       |> List.filter (fun p -> p <> ""))
  | [ s; chars ] ->
    if chars = "" then
      Tcl_list.of_list (List.init (String.length s) (fun i -> String.make 1 s.[i]))
    else begin
      let parts = ref [] in
      let buf = Buffer.create 16 in
      String.iter
        (fun ch ->
          if String.contains chars ch then begin
            parts := Buffer.contents buf :: !parts;
            Buffer.clear buf
          end
          else Buffer.add_char buf ch)
        s;
      parts := Buffer.contents buf :: !parts;
      Tcl_list.of_list (List.rev !parts)
    end
  | _ -> arity "split" "string ?splitChars?"

(* ------------------------------------------------------------------ *)
(* Strings                                                            *)
(* ------------------------------------------------------------------ *)

let cmd_string _ args =
  match args with
  | "length" :: [ s ] -> string_of_int (String.length s)
  | "index" :: [ s; i ] ->
    let i = int_arg "string index" i in
    if i >= 0 && i < String.length s then String.make 1 s.[i] else ""
  | "range" :: [ s; first; last ] ->
    let n = String.length s in
    let first = max 0 (int_arg "string range" first) in
    let last = if last = "end" then n - 1 else min (n - 1) (int_arg "string range" last) in
    if first > last then "" else String.sub s first (last - first + 1)
  | "tolower" :: [ s ] -> String.lowercase_ascii s
  | "toupper" :: [ s ] -> String.uppercase_ascii s
  | "trim" :: [ s ] -> String.trim s
  | "compare" :: [ a; b ] -> string_of_int (compare a b)
  | "equal" :: [ a; b ] -> if String.equal a b then "1" else "0"
  | "first" :: [ needle; haystack ] ->
    let nl = String.length needle and hl = String.length haystack in
    let rec find i =
      if i + nl > hl then -1
      else if String.sub haystack i nl = needle then i
      else find (i + 1)
    in
    string_of_int (if nl = 0 then -1 else find 0)
  | "last" :: [ needle; haystack ] ->
    let nl = String.length needle and hl = String.length haystack in
    let rec find i =
      if i < 0 then -1
      else if String.sub haystack i nl = needle then i
      else find (i - 1)
    in
    string_of_int (if nl = 0 then -1 else find (hl - nl))
  | "match" :: [ pattern; s ] -> if glob_match pattern 0 s 0 then "1" else "0"
  | "repeat" :: [ s; count ] ->
    let n = int_arg "string repeat" count in
    let buf = Buffer.create (String.length s * max n 0) in
    for _ = 1 to n do Buffer.add_string buf s done;
    Buffer.contents buf
  | sub :: _ -> errorf "bad option %S to string" sub
  | [] -> arity "string" "option arg ?arg ...?"

(* printf-subset for [format]: flags - 0, width, precision; d i u x X o c s f e g % *)
let cmd_format _ = function
  | [] -> arity "format" "formatString ?arg ...?"
  | fmt :: args ->
    let buf = Buffer.create (String.length fmt + 16) in
    let args = ref args in
    let next_arg () =
      match !args with
      | a :: rest -> args := rest; a
      | [] -> error "format: not enough arguments"
    in
    let n = String.length fmt in
    let i = ref 0 in
    while !i < n do
      let ch = fmt.[!i] in
      if ch <> '%' then begin Buffer.add_char buf ch; incr i end
      else begin
        incr i;
        if !i < n && fmt.[!i] = '%' then begin Buffer.add_char buf '%'; incr i end
        else begin
          let start = !i in
          while
            !i < n
            && (let c = fmt.[!i] in
                c = '-' || c = '0' || c = '+' || c = ' ' || c = '.'
                || (c >= '1' && c <= '9'))
          do
            incr i
          done;
          if !i >= n then error "format: truncated specifier";
          let spec = String.sub fmt start (!i - start) in
          let conv = fmt.[!i] in
          incr i;
          let arg = next_arg () in
          let rendered =
            match conv with
            | 'd' | 'i' ->
              Printf.sprintf (Scanf.format_from_string ("%" ^ spec ^ "d") "%d")
                (int_arg "format" arg)
            | 'u' ->
              Printf.sprintf (Scanf.format_from_string ("%" ^ spec ^ "u") "%u")
                (int_arg "format" arg)
            | 'x' ->
              Printf.sprintf (Scanf.format_from_string ("%" ^ spec ^ "x") "%x")
                (int_arg "format" arg)
            | 'X' ->
              Printf.sprintf (Scanf.format_from_string ("%" ^ spec ^ "X") "%X")
                (int_arg "format" arg)
            | 'o' ->
              Printf.sprintf (Scanf.format_from_string ("%" ^ spec ^ "o") "%o")
                (int_arg "format" arg)
            | 'c' ->
              let code = int_arg "format" arg in
              String.make 1 (Char.chr (code land 0xff))
            | 's' ->
              Printf.sprintf (Scanf.format_from_string ("%" ^ spec ^ "s") "%s") arg
            | 'f' | 'e' | 'g' ->
              let f =
                match float_of_string_opt arg with
                | Some f -> f
                | None -> errorf "format: expected float but got %S" arg
              in
              let spec_str = "%" ^ spec ^ String.make 1 conv in
              (match conv with
               | 'f' -> Printf.sprintf (Scanf.format_from_string spec_str "%f") f
               | 'e' -> Printf.sprintf (Scanf.format_from_string spec_str "%e") f
               | _ -> Printf.sprintf (Scanf.format_from_string spec_str "%g") f)
            | c -> errorf "format: unsupported conversion %%%c" c
          in
          Buffer.add_string buf rendered
        end
      end
    done;
    Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Output and introspection                                           *)
(* ------------------------------------------------------------------ *)

let cmd_puts t = function
  | [ s ] -> output t (s ^ "\n"); ""
  | [ "-nonewline"; s ] -> output t s; ""
  | _ -> arity "puts" "?-nonewline? string"

let cmd_info t = function
  | [ "exists"; name ] -> if var_exists t name then "1" else "0"
  | "commands" :: _ -> Tcl_list.of_list (command_names t)
  | "procs" :: _ -> Tcl_list.of_list (proc_names t)
  | sub :: _ -> errorf "bad option %S to info" sub
  | [] -> arity "info" "option ?arg ...?"

let install t =
  let r name fn = register t name fn in
  r "set" cmd_set;
  r "unset" cmd_unset;
  r "incr" cmd_incr;
  r "append" cmd_append;
  r "global" cmd_global;
  r "subst" cmd_subst;
  r "expr" cmd_expr;
  r "if" cmd_if;
  r "while" cmd_while;
  r "for" cmd_for;
  r "foreach" cmd_foreach;
  r "break" cmd_break;
  r "continue" cmd_continue;
  r "return" cmd_return;
  r "error" cmd_error;
  r "catch" cmd_catch;
  r "eval" cmd_eval;
  r "switch" cmd_switch;
  r "proc" cmd_proc;
  r "list" cmd_list;
  r "lindex" cmd_lindex;
  r "llength" cmd_llength;
  r "lappend" cmd_lappend;
  r "lrange" cmd_lrange;
  r "lsearch" cmd_lsearch;
  r "lsort" cmd_lsort;
  r "lreverse" cmd_lreverse;
  r "lrepeat" cmd_lrepeat;
  r "concat" cmd_concat;
  r "join" cmd_join;
  r "split" cmd_split;
  r "string" cmd_string;
  r "format" cmd_format;
  r "puts" cmd_puts;
  r "info" cmd_info
