(** Standard command library for the interpreter.

    Installs the Tcl-subset commands the paper's scripts rely on:

    - variables: [set], [unset], [incr], [append], [global], [subst]
    - control flow: [if], [while], [for], [foreach], [break], [continue],
      [proc], [return], [error], [catch], [eval]
    - expressions: [expr]
    - lists: [list], [lindex], [llength], [lappend], [lrange], [lsearch],
      [lsort], [lreverse], [lrepeat], [concat], [join], [split]
    - strings: [string length|index|range|tolower|toupper|trim|compare|
      first|last|match|repeat], [format]
    - output & introspection: [puts], [info exists|commands|procs|vars] *)

val install : Interp.t -> unit

val max_loop_iterations : int
(** [while]/[for] raise {!Interp.Script_error} beyond this many
    iterations — a filter script runs inside a simulator event, where a
    runaway loop would hang the whole experiment. *)
