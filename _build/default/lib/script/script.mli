(** Convenience entry point: an interpreter with the standard command
    library installed.

    {[
      let interp = Script.create () in
      ignore (Script.eval interp "set x 41; expr {$x + 1}")  (* "42" *)
    ]} *)

val create : ?output:(string -> unit) -> unit -> Interp.t

val eval : Interp.t -> string -> string
(** Re-export of {!Interp.eval}. *)

val eval_capture : Interp.t -> string -> string * string
(** [eval_capture t src] evaluates [src] while capturing [puts] output;
    returns [(result, captured_output)].  The previous output sink is
    restored afterwards, even on error. *)
