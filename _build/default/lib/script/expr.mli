(** Arithmetic/logic expression evaluator behind the [expr] command and
    the conditions of [if]/[while]/[for].

    Operates on a fully substituted expression string (variable and
    command substitution have already happened; see {!Interp.subst_expr}).
    Supports the C-like operator set of Tcl's [expr]: arithmetic with
    integer/float promotion, hex literals, comparisons (numeric when both
    sides parse as numbers, lexicographic otherwise), [eq]/[ne] string
    comparison, boolean connectives with short-circuit, bitwise ops,
    shifts, the ternary conditional, and the functions [abs], [int],
    [double], [round], [min], [max], [pow], [fmod], [sqrt]. *)

exception Error of string

type value =
  | Int of int
  | Float of float
  | Str of string

val eval : string -> value

val eval_to_string : string -> string
(** Evaluates and renders the result as Tcl would print it. *)

val eval_to_bool : string -> bool
(** Evaluates and coerces to a boolean: a number is true iff non-zero;
    the words true/false, yes/no, on/off are accepted.  Anything else
    raises {!Error}. *)

val to_string : value -> string
val truthy : value -> bool

val parse_number : string -> value option
(** [Some (Int _ | Float _)] when the whole string is a numeric literal
    (decimal, hex with [0x], or float); [None] otherwise. *)
