lib/script/expr.ml: Float Format List Printf String
