lib/script/expr.mli:
