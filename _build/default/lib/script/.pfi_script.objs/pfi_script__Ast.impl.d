lib/script/ast.ml:
