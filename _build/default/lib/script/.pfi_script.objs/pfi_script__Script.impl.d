lib/script/script.ml: Buffer Builtins Interp
