lib/script/tcl_list.mli:
