lib/script/tcl_list.ml: Buffer List Parser String
