lib/script/builtins.ml: Buffer Char Expr Interp List Option Printf Scanf String Tcl_list
