lib/script/script.mli: Interp
