lib/script/builtins.mli: Interp
