lib/script/parser.ml: Ast Buffer Format List String
