lib/script/interp.ml: Ast Buffer Expr Format Hashtbl List Parser Tcl_list
