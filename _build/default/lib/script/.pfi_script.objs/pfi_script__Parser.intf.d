lib/script/parser.mli: Ast
