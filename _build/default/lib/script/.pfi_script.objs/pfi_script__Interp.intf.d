lib/script/interp.mli: Ast Expr Format
