let is_space ch = ch = ' ' || ch = '\t' || ch = '\n' || ch = '\r'

let to_list src =
  let n = String.length src in
  let elements = ref [] in
  let pos = ref 0 in
  let fail msg = raise (Parser.Parse_error msg) in
  let scan_braced () =
    (* cursor past the opening brace *)
    let start = !pos in
    let rec loop depth =
      if !pos >= n then fail "unbalanced braces in list"
      else begin
        let ch = src.[!pos] in
        incr pos;
        match ch with
        | '\\' -> if !pos < n then incr pos; loop depth
        | '{' -> loop (depth + 1)
        | '}' ->
          if depth = 0 then String.sub src start (!pos - start - 1)
          else loop (depth - 1)
        | _ -> loop depth
      end
    in
    loop 0
  in
  let scan_quoted () =
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unbalanced quotes in list"
      else begin
        let ch = src.[!pos] in
        incr pos;
        match ch with
        | '"' -> Buffer.contents buf
        | '\\' when !pos < n ->
          Buffer.add_char buf src.[!pos];
          incr pos;
          loop ()
        | ch -> Buffer.add_char buf ch; loop ()
      end
    in
    loop ()
  in
  let scan_bare () =
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos < n && not (is_space src.[!pos]) then begin
        let ch = src.[!pos] in
        incr pos;
        if ch = '\\' && !pos < n then begin
          Buffer.add_char buf src.[!pos];
          incr pos
        end
        else Buffer.add_char buf ch;
        loop ()
      end
    in
    loop ();
    Buffer.contents buf
  in
  let rec loop () =
    while !pos < n && is_space src.[!pos] do incr pos done;
    if !pos < n then begin
      let element =
        match src.[!pos] with
        | '{' -> incr pos; scan_braced ()
        | '"' -> incr pos; scan_quoted ()
        | _ -> scan_bare ()
      in
      elements := element :: !elements;
      loop ()
    end
  in
  loop ();
  List.rev !elements

let needs_quoting s =
  String.length s = 0
  || String.exists
       (fun ch ->
         is_space ch || ch = '{' || ch = '}' || ch = '"' || ch = '\\'
         || ch = '[' || ch = ']' || ch = '$' || ch = ';')
       s

let braces_balanced s =
  let depth = ref 0 in
  let ok = ref true in
  String.iter
    (fun ch ->
      if ch = '{' then incr depth
      else if ch = '}' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    s;
  !ok && !depth = 0

let quote_element s =
  if not (needs_quoting s) then s
  else if braces_balanced s && not (String.contains s '\\') then "{" ^ s ^ "}"
  else begin
    (* brace-unbalanced content falls back to backslash escaping *)
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun ch ->
        (match ch with
         | '{' | '}' | '\\' | '"' | '[' | ']' | '$' | ';' | ' ' | '\t' ->
           Buffer.add_char buf '\\'
         | '\n' | '\r' -> Buffer.add_char buf '\\'
         | _ -> ());
        Buffer.add_char buf ch)
      s;
    Buffer.contents buf
  end

let of_list elements = String.concat " " (List.map quote_element elements)

let index src i =
  let l = to_list src in
  List.nth_opt l i

let length src = List.length (to_list src)

let append src element =
  let quoted = quote_element element in
  if String.length src = 0 then quoted else src ^ " " ^ quoted

let range src first last =
  let l = to_list src in
  let n = List.length l in
  let first = max 0 first in
  let last = min (n - 1) last in
  if first > last then ""
  else
    of_list (List.filteri (fun i _ -> i >= first && i <= last) l)
