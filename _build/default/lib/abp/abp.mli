(** The alternating-bit protocol — a third target protocol.

    The paper's future work includes "experimental studies of other
    commercial and prototype distributed protocols"; ABP is the
    classic textbook stop-and-wait ARQ and makes a compact target for
    the script-generation campaigns in {!Pfi_testgen}: a sender
    transmits one frame at a time, tagged with a single alternating
    bit, retransmitting on a timer until the matching ACK arrives; the
    receiver delivers each fresh bit exactly once and re-acknowledges
    duplicates.

    Wire format: 1 byte kind (0 = MSG, 1 = ACK), 1 byte bit, 2 bytes
    checksum (ones' complement over the rest), payload (MSG only).
    Frames failing the checksum are dropped — corruption faults are
    tolerated by retransmission.

    A known fault can be re-implanted for the campaign to find:
    [bug_ignore_ack_bit] makes the sender accept {e any} ACK as
    acknowledging the outstanding frame, so a duplicated or stale ACK
    releases the next frame early and data is lost on the wire. *)

open Pfi_engine

type t

val create :
  sim:Sim.t -> node:string -> peer:string ->
  ?retransmit_every:Vtime.t -> ?bug_ignore_ack_bit:bool -> unit -> t
(** One endpoint; it can both send and receive. *)

val layer : t -> Pfi_stack.Layer.t

val send : t -> string -> unit
(** Queues one application message for reliable delivery to the peer. *)

val on_deliver : t -> (string -> unit) -> unit

val delivered : t -> string list
(** Everything delivered to the application, oldest first. *)

val sent_count : t -> int
val unacked : t -> int
(** Queued + in-flight messages not yet acknowledged. *)

(** {1 Packet stub}

    Registered under protocol name ["abp"]; types ["MSG"]/["ACK"],
    fields [bit], [kind], [len]; generates stateless ACK frames (and
    MSG frames, which the campaign uses as spurious injections). *)

val stub : Pfi_core.Stubs.t
