lib/abp/abp.mli: Pfi_core Pfi_engine Pfi_stack Sim Vtime
