lib/abp/abp.ml: Bytes Bytes_codec Char Layer List Message Option Pfi_core Pfi_engine Pfi_netsim Pfi_stack Printf Sim Timer Vtime
