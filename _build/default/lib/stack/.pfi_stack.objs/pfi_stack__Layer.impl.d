lib/stack/layer.ml: Message Printf
