lib/stack/driver.mli: Layer Message
