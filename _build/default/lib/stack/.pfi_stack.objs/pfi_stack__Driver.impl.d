lib/stack/driver.ml: Layer List Message
