lib/stack/bytes_codec.mli: Bytes
