lib/stack/bytes_codec.ml: Buffer Bytes Char Int32
