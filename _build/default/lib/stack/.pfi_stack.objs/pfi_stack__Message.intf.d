lib/stack/message.mli: Bytes Format
