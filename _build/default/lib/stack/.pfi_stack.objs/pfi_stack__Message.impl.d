lib/stack/message.ml: Buffer Bytes Bytes_codec Char Format List Printf
