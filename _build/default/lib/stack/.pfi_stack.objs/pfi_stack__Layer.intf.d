lib/stack/layer.mli: Message
