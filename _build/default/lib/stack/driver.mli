(** Driver layer: the test workload generator at the top of a stack.

    The paper's driver layer "is responsible for generating messages and
    running the test"; because it sits {e above} the target protocol it
    can create stateful messages (e.g. TCP data) that the PFI layer
    below cannot.  This driver records everything delivered to it and
    can forward deliveries to a callback. *)

type t

val create : node:string -> ?on_receive:(Message.t -> unit) -> unit -> t

val layer : t -> Layer.t
(** To place at the top when wiring the stack. *)

val send : t -> Message.t -> unit
(** Pushes a message down into the stack. *)

val send_string : t -> string -> unit

val set_on_receive : t -> (Message.t -> unit) -> unit

val received : t -> Message.t list
(** Messages delivered up to the driver, oldest first. *)

val received_count : t -> int
val clear_received : t -> unit
