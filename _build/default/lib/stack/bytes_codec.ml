exception Truncated of string

type writer = Buffer.t

let writer () = Buffer.create 64

let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

let u16 w v =
  u8 w ((v lsr 8) land 0xff);
  u8 w (v land 0xff)

let u32 w v =
  let v = Int32.to_int v land 0xffffffff in
  u8 w ((v lsr 24) land 0xff);
  u8 w ((v lsr 16) land 0xff);
  u8 w ((v lsr 8) land 0xff);
  u8 w (v land 0xff)

let u32_of_int w v = u32 w (Int32.of_int (v land 0xffffffff))

let bytes w b = Buffer.add_bytes w b
let string w s = Buffer.add_string w s
let contents w = Buffer.to_bytes w

type reader = { data : Bytes.t; mutable pos : int }

let reader data = { data; pos = 0 }

let need r n what =
  if r.pos + n > Bytes.length r.data then raise (Truncated what)

let read_u8 r =
  need r 1 "u8";
  let v = Char.code (Bytes.get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let read_u16 r =
  let hi = read_u8 r in
  let lo = read_u8 r in
  (hi lsl 8) lor lo

let read_u32 r =
  let a = read_u8 r in
  let b = read_u8 r in
  let c = read_u8 r in
  let d = read_u8 r in
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))

let read_u32_int r =
  let a = read_u8 r in
  let b = read_u8 r in
  let c = read_u8 r in
  let d = read_u8 r in
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let read_bytes r n =
  need r n "bytes";
  let b = Bytes.sub r.data r.pos n in
  r.pos <- r.pos + n;
  b

let read_rest r =
  let n = Bytes.length r.data - r.pos in
  read_bytes r n

let remaining r = Bytes.length r.data - r.pos
let pos r = r.pos
