type t = {
  layer : Layer.t;
  mutable rev_received : Message.t list;
  mutable count : int;
  mutable on_receive : Message.t -> unit;
}

let create ~node ?(on_receive = fun _ -> ()) () =
  let t_ref = ref None in
  let layer =
    Layer.create ~name:"driver" ~node
      { on_push = (fun layer msg -> Layer.send_down layer msg);
        on_pop =
          (fun _ msg ->
            match !t_ref with
            | Some t ->
              t.rev_received <- msg :: t.rev_received;
              t.count <- t.count + 1;
              t.on_receive msg
            | None -> ()) }
  in
  let t = { layer; rev_received = []; count = 0; on_receive } in
  t_ref := Some t;
  t

let layer t = t.layer
let send t msg = Layer.send_down t.layer msg
let send_string t s = send t (Message.of_string s)
let set_on_receive t fn = t.on_receive <- fn
let received t = List.rev t.rev_received
let received_count t = t.count

let clear_received t =
  t.rev_received <- [];
  t.count <- 0
