type t = {
  layer_name : string;
  node_name : string;
  handlers : handlers;
  mutable above : t option;
  mutable below : t option;
}

and handlers = {
  on_push : t -> Message.t -> unit;
  on_pop : t -> Message.t -> unit;
}

let create ~name ~node handlers =
  { layer_name = name; node_name = node; handlers; above = None; below = None }

let name t = t.layer_name
let node t = t.node_name
let above t = t.above
let below t = t.below

let push t msg = t.handlers.on_push t msg
let pop t msg = t.handlers.on_pop t msg

let send_down t msg =
  match t.below with
  | Some lower -> push lower msg
  | None ->
    failwith
      (Printf.sprintf "layer %s/%s: send_down off the bottom of the stack"
         t.node_name t.layer_name)

let deliver_up t msg =
  match t.above with
  | Some upper -> pop upper msg
  | None ->
    failwith
      (Printf.sprintf "layer %s/%s: deliver_up off the top of the stack"
         t.node_name t.layer_name)

let passthrough ~name ~node () =
  create ~name ~node
    { on_push = (fun t msg -> send_down t msg);
      on_pop = (fun t msg -> deliver_up t msg) }

let link ~upper ~lower =
  upper.below <- Some lower;
  lower.above <- Some upper

let rec stack = function
  | upper :: (lower :: _ as rest) ->
    link ~upper ~lower;
    stack rest
  | [ _ ] | [] -> ()

let insert_below target layer =
  let old_lower = target.below in
  link ~upper:target ~lower:layer;
  match old_lower with
  | Some lower -> link ~upper:layer ~lower
  | None -> layer.below <- None

let insert_above target layer =
  let old_upper = target.above in
  link ~upper:layer ~lower:target;
  match old_upper with
  | Some upper -> link ~upper ~lower:layer
  | None -> layer.above <- None

let remove t =
  (match (t.above, t.below) with
   | Some upper, Some lower -> link ~upper ~lower
   | Some upper, None -> upper.below <- None
   | None, Some lower -> lower.above <- None
   | None, None -> ());
  t.above <- None;
  t.below <- None
