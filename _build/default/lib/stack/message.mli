(** Messages travelling through a protocol stack.

    A message carries its current wire form as raw bytes: each layer
    pushes its header on the way down and strips it on the way up, in the
    x-Kernel style.  Attributes are out-of-band metadata (message type
    tags, trace annotations) that recognition stubs and filter scripts
    read and write; they never appear on the wire. *)

type t

val create : ?attrs:(string * string) list -> Bytes.t -> t
val of_string : string -> t

val id : t -> int
(** Unique per process; survives header push/pop but {e not} {!copy}. *)

val payload : t -> Bytes.t
val set_payload : t -> Bytes.t -> unit
val length : t -> int
val to_string : t -> string

(** {1 Header manipulation} *)

val push_header : t -> Bytes.t -> unit
(** Prepends [header] to the payload. *)

val pop_header : t -> int -> Bytes.t
(** Removes and returns the first [n] bytes.
    Raises {!Bytes_codec.Truncated} if the message is shorter. *)

val peek : t -> int -> Bytes.t
(** First [n] bytes without removing them. *)

(** {1 Attributes} *)

val get_attr : t -> string -> string option
val set_attr : t -> string -> string -> unit
val remove_attr : t -> string -> unit
val attrs : t -> (string * string) list

(** {1 Fault-injection helpers} *)

val copy : t -> t
(** Deep copy with a fresh id — message duplication. *)

val corrupt_byte : t -> offset:int -> t
(** Flips all bits of one payload byte in place (returns the same
    message).  Out-of-range offsets are ignored. *)

val xor_byte : t -> offset:int -> mask:int -> t

val hex : ?max_bytes:int -> t -> string
(** Hex dump of the payload for logs. *)

val pp : Format.formatter -> t -> unit
