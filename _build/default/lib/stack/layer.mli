(** Protocol layers, x-Kernel style.

    A layer receives messages {e pushed} from the layer above (heading
    down toward the wire) and {e popped} from the layer below (heading up
    toward the application).  Layers are doubly linked; inserting a layer
    between two others — how the PFI layer splices itself under a target
    protocol — is a constant-time relink. *)

type t

type handlers = {
  on_push : t -> Message.t -> unit;
      (** a message arriving from above, travelling down *)
  on_pop : t -> Message.t -> unit;
      (** a message arriving from below, travelling up *)
}

val create : name:string -> node:string -> handlers -> t

val passthrough : name:string -> node:string -> unit -> t
(** Forwards in both directions unchanged. *)

val name : t -> string
val node : t -> string

val above : t -> t option
val below : t -> t option

(** {1 Moving messages}

    These are what layer handler bodies call to continue a message's
    journey.  Sending off the end of the stack is an error: the bottom
    layer must consume downward messages (hand them to the network) and
    the top layer must consume upward ones. *)

val send_down : t -> Message.t -> unit
(** Pushes to the layer below [t].  @raise Failure if none. *)

val deliver_up : t -> Message.t -> unit
(** Pops to the layer above [t].  @raise Failure if none. *)

val push : t -> Message.t -> unit
(** Invokes [t]'s own push handler (enter the layer from above). *)

val pop : t -> Message.t -> unit
(** Invokes [t]'s own pop handler (enter the layer from below). *)

(** {1 Wiring} *)

val link : upper:t -> lower:t -> unit

val stack : t list -> unit
(** Links a top-to-bottom list of layers. *)

val insert_below : t -> t -> unit
(** [insert_below target layer] splices [layer] directly beneath
    [target] — the paper's "PFI layer sits directly between the TCP layer
    and the IP layer". *)

val insert_above : t -> t -> unit

val remove : t -> unit
(** Unsplices a layer, relinking its neighbours. *)
