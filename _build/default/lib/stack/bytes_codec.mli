(** Big-endian wire-format helpers for protocol header codecs. *)

exception Truncated of string
(** Raised by readers that run past the end of the buffer. *)

(** {1 Writing} — a growable buffer that renders to [Bytes.t]. *)

type writer

val writer : unit -> writer
val u8 : writer -> int -> unit
val u16 : writer -> int -> unit
val u32 : writer -> int32 -> unit
val u32_of_int : writer -> int -> unit
(** Writes the low 32 bits of a native int (sequence numbers are kept as
    ints in protocol code). *)

val bytes : writer -> Bytes.t -> unit
val string : writer -> string -> unit
val contents : writer -> Bytes.t

(** {1 Reading} — a cursor over immutable bytes. *)

type reader

val reader : Bytes.t -> reader
val read_u8 : reader -> int
val read_u16 : reader -> int
val read_u32 : reader -> int32
val read_u32_int : reader -> int
(** Reads 32 bits into a non-negative native int. *)

val read_bytes : reader -> int -> Bytes.t
val read_rest : reader -> Bytes.t
val remaining : reader -> int
val pos : reader -> int
