open Pfi_engine
open Pfi_stack

type t =
  | Process_crash of { at : Vtime.t }
  | Link_crash of { at : Vtime.t }
  | Send_omission of { p : float }
  | Receive_omission of { p : float }
  | General_omission of { p_send : float; p_recv : float }
  | Timing of { mean : float; std : float }
  | Byzantine of { corrupt_p : float; reorder_p : float; duplicate_p : float }

let severity = function
  | Process_crash _ -> 0
  | Link_crash _ -> 1
  | Send_omission _ -> 2
  | Receive_omission _ -> 3
  | General_omission _ -> 4
  | Timing _ -> 5
  | Byzantine _ -> 6

let more_severe a b = severity a > severity b

let describe = function
  | Process_crash { at } -> Printf.sprintf "process crash at %s" (Vtime.to_string at)
  | Link_crash { at } -> Printf.sprintf "link crash at %s" (Vtime.to_string at)
  | Send_omission { p } -> Printf.sprintf "send omission p=%.2f" p
  | Receive_omission { p } -> Printf.sprintf "receive omission p=%.2f" p
  | General_omission { p_send; p_recv } ->
    Printf.sprintf "general omission p_send=%.2f p_recv=%.2f" p_send p_recv
  | Timing { mean; std } ->
    Printf.sprintf "timing failure delay~N(%.2fs, %.2fs)" mean std
  | Byzantine { corrupt_p; reorder_p; duplicate_p } ->
    Printf.sprintf "byzantine corrupt=%.2f reorder=%.2f duplicate=%.2f" corrupt_p
      reorder_p duplicate_p

let apply pfi model =
  let sim = Pfi_layer.sim pfi in
  let rng = Rng.split (Sim.rng sim) in
  let label = describe model in
  match model with
  | Process_crash { at } ->
    let crashed () = Vtime.(Sim.now sim >= at) in
    let filter _msg : Pfi_layer.native_action = if crashed () then Drop else Pass in
    Pfi_layer.add_native_send pfi ~label filter;
    Pfi_layer.add_native_receive pfi ~label filter
  | Link_crash { at } ->
    let filter _msg : Pfi_layer.native_action =
      if Vtime.(Sim.now sim >= at) then Drop else Pass
    in
    Pfi_layer.add_native_send pfi ~label filter
  | Send_omission { p } ->
    Pfi_layer.add_native_send pfi ~label (fun _ ->
        if Rng.bernoulli rng ~p then Pfi_layer.Drop else Pfi_layer.Pass)
  | Receive_omission { p } ->
    Pfi_layer.add_native_receive pfi ~label (fun _ ->
        if Rng.bernoulli rng ~p then Pfi_layer.Drop else Pfi_layer.Pass)
  | General_omission { p_send; p_recv } ->
    Pfi_layer.add_native_send pfi ~label (fun _ ->
        if Rng.bernoulli rng ~p:p_send then Pfi_layer.Drop else Pfi_layer.Pass);
    Pfi_layer.add_native_receive pfi ~label (fun _ ->
        if Rng.bernoulli rng ~p:p_recv then Pfi_layer.Drop else Pfi_layer.Pass)
  | Timing { mean; std } ->
    let delayed () =
      let d = Rng.normal rng ~mean ~std in
      Vtime.of_sec_f (Float.max 0.0 d)
    in
    Pfi_layer.add_native_send pfi ~label (fun _ -> Pfi_layer.Delay (delayed ()));
    Pfi_layer.add_native_receive pfi ~label (fun _ -> Pfi_layer.Delay (delayed ()))
  | Byzantine { corrupt_p; reorder_p; duplicate_p } ->
    Pfi_layer.add_native_send pfi ~label (fun msg ->
        if Rng.bernoulli rng ~p:corrupt_p && Message.length msg > 0 then
          ignore
            (Message.corrupt_byte msg ~offset:(Rng.int rng (Message.length msg)));
        if Rng.bernoulli rng ~p:duplicate_p then
          Pfi_layer.inject_down pfi (Message.copy msg);
        if Rng.bernoulli rng ~p:reorder_p then
          (* push the message behind its successors *)
          Pfi_layer.Delay (Vtime.of_sec_f (Rng.float rng 0.05))
        else Pfi_layer.Pass)
