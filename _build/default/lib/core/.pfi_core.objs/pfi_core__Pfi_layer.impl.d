lib/core/pfi_layer.ml: Ast Blackboard Format Hashtbl Int64 Interp Layer List Message Option Pfi_engine Pfi_script Pfi_stack Printf Queue Rng Script Sim String Stubs Timer Vtime
