lib/core/pfi_layer.mli: Blackboard Layer Message Pfi_engine Pfi_script Pfi_stack Sim Stubs Vtime
