lib/core/stubs.mli: Pfi_stack
