lib/core/blackboard.mli:
