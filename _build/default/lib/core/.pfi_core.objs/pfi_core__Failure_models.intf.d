lib/core/failure_models.mli: Pfi_engine Pfi_layer Vtime
