lib/core/failure_models.ml: Float Message Pfi_engine Pfi_layer Pfi_stack Printf Rng Sim Vtime
