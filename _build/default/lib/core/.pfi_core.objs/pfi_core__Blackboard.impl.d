lib/core/blackboard.ml: Hashtbl List Option
