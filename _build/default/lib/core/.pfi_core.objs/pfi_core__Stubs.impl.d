lib/core/stubs.ml: Hashtbl List Message Pfi_stack Printf
