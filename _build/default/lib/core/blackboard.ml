type t = (string, string) Hashtbl.t

let create () = Hashtbl.create 16

let set t key value = Hashtbl.replace t key value
let get t key = Hashtbl.find_opt t key

let get_default t key ~default = Option.value (get t key) ~default

let incr t key =
  let current =
    match get t key with
    | Some v -> (match int_of_string_opt v with Some i -> i | None -> 0)
    | None -> 0
  in
  let updated = current + 1 in
  set t key (string_of_int updated);
  updated

let remove t key = Hashtbl.remove t key
let clear t = Hashtbl.reset t
let keys t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
