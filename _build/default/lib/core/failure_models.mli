(** The failure-model library (paper §2.2).

    Each constructor describes one way a protocol participant may
    deviate from its specification; {!apply} installs native filters on
    a PFI layer that emulate the misbehaviour.  Models are ordered by
    severity: a model [b] is more severe than [a] when the faulty
    behaviours allowed by [a] are a proper subset of those allowed by
    [b], so an implementation tolerating [b] also tolerates [a]. *)

open Pfi_engine

type t =
  | Process_crash of { at : Vtime.t }
      (** halt at [at]: nothing is sent or received from then on
          (correct behaviour before) *)
  | Link_crash of { at : Vtime.t }
      (** the outgoing link stops transporting messages at [at] *)
  | Send_omission of { p : float }
      (** each outgoing message is omitted with probability [p] *)
  | Receive_omission of { p : float }
      (** each incoming message is omitted with probability [p] *)
  | General_omission of { p_send : float; p_recv : float }
  | Timing of { mean : float; std : float }
      (** every message is delayed by [max 0 (normal mean std)] seconds:
          steps take longer than their specified bound *)
  | Byzantine of { corrupt_p : float; reorder_p : float; duplicate_p : float }
      (** arbitrary behaviour: random corruption, reordering (via a
          hold-and-release queue) and duplication of outgoing messages *)

val severity : t -> int
(** Position in the severity order (crash = 0 ... byzantine = 6). *)

val more_severe : t -> t -> bool
(** [more_severe a b] iff [a] allows strictly more faulty behaviour. *)

val describe : t -> string

val apply : Pfi_layer.t -> t -> unit
(** Installs the model on the layer as native filters (and, for
    byzantine reordering, a periodic release timer).  Several models can
    be layered on the same PFI layer. *)
