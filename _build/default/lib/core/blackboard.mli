(** Shared key/value blackboard for cross-layer script synchronisation.

    The paper lists "synchronizing scripts executed by PFI layers running
    on different nodes" among the predefined library facilities.  In the
    simulator all PFI layers of an experiment share one blackboard: a
    script on node A sets a key, a script on node B branches on it.  The
    experiment harness can also use it to flip global test phases. *)

type t

val create : unit -> t

val set : t -> string -> string -> unit
val get : t -> string -> string option
val get_default : t -> string -> default:string -> string
val incr : t -> string -> int
(** Increments an integer-valued key (missing counts as 0); returns the
    new value. *)

val remove : t -> string -> unit
val clear : t -> unit
val keys : t -> string list
