examples/generated_campaign.mli:
