examples/gmp_chaos.mli:
