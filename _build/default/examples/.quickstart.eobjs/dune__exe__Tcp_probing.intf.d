examples/tcp_probing.mli:
