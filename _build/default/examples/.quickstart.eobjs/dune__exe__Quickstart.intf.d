examples/quickstart.mli:
