examples/tcp_probing.ml: List Pfi_core Pfi_engine Pfi_experiments Pfi_layer Pfi_tcp Printf Profile Sim Tcp Tcp_rig Trace Vtime
