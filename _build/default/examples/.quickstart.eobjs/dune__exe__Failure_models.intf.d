examples/failure_models.mli:
