examples/generated_campaign.ml: Abp_harness Campaign Generator Pfi_testgen
