examples/quickstart.ml: Bytes Driver Layer List Message Network Option Pfi_core Pfi_engine Pfi_layer Pfi_netsim Pfi_stack Printf Sim Stubs Trace
