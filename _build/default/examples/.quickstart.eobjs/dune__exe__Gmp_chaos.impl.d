examples/gmp_chaos.ml: Gmd Gmp_rig List Pfi_engine Pfi_experiments Pfi_gmp Pfi_netsim Printf Sim String Vtime
