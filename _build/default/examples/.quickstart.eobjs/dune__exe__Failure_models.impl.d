examples/failure_models.ml: Driver Failure_models Layer List Message Network Pfi_core Pfi_engine Pfi_layer Pfi_netsim Pfi_stack Printf Sim Vtime
