(* The failure-model library (paper §2.2) in action: a message stream
   crosses a PFI layer configured with each model in turn; the delivery
   statistics show what each model does to the traffic.

   Run with:  dune exec examples/failure_models.exe *)

open Pfi_engine
open Pfi_stack
open Pfi_netsim
open Pfi_core

let run_under_model model =
  let sim = Sim.create ~seed:7L () in
  let net = Network.create sim in
  let sender = Driver.create ~node:"sender" () in
  let pfi = Pfi_layer.create ~sim ~node:"sender" () in
  let dev_s = Network.attach net ~node:"sender" in
  Layer.stack [ Driver.layer sender; Pfi_layer.layer pfi; dev_s ];
  let receiver = Driver.create ~node:"receiver" () in
  let pfi_r = Pfi_layer.create ~sim ~node:"receiver" () in
  let dev_r = Network.attach net ~node:"receiver" in
  Layer.stack [ Driver.layer receiver; Pfi_layer.layer pfi_r; dev_r ];
  (* the faulty behaviour covers the whole path: outgoing faults act at
     the sender's PFI layer, incoming ones at the receiver's *)
  (match model with
   | Some m ->
     Failure_models.apply pfi m;
     Failure_models.apply pfi_r m
   | None -> ());
  (* 200 messages, one every 100 ms *)
  for i = 0 to 199 do
    ignore
      (Sim.schedule sim ~delay:(Vtime.ms (100 * i)) (fun () ->
           let msg = Message.of_string (Printf.sprintf "m%03d" i) in
           Message.set_attr msg Network.dst_attr "receiver";
           Driver.send sender msg))
  done;
  Sim.run sim;
  let received = Driver.received receiver in
  let in_order =
    let texts = List.map Message.to_string received in
    List.sort_uniq compare texts = texts
  in
  let last_arrival =
    match List.rev received with
    | _ :: _ -> Vtime.to_sec_f (Sim.now sim)
    | [] -> 0.0
  in
  (List.length received, in_order, last_arrival)

let () =
  let open Failure_models in
  let models =
    [ ("none (baseline)", None);
      ("process crash @10s", Some (Process_crash { at = Vtime.sec 10 }));
      ("link crash @10s", Some (Link_crash { at = Vtime.sec 10 }));
      ("send omission p=0.3", Some (Send_omission { p = 0.3 }));
      ("receive omission p=0.3", Some (Receive_omission { p = 0.3 }));
      ( "general omission 0.2/0.2",
        Some (General_omission { p_send = 0.2; p_recv = 0.2 }) );
      ("timing N(0.5s, 0.2s)", Some (Timing { mean = 0.5; std = 0.2 }));
      ( "byzantine (corrupt/reorder/dup)",
        Some (Byzantine { corrupt_p = 0.2; reorder_p = 0.3; duplicate_p = 0.2 }) ) ]
  in
  Printf.printf "%-34s %10s %9s %10s\n" "failure model" "delivered" "in-order"
    "run ends";
  List.iter
    (fun (label, model) ->
      let delivered, in_order, ends = run_under_model model in
      Printf.printf "%-34s %7d/200 %9b %9.1fs\n" label delivered in_order ends)
    models;
  print_newline ();
  print_endline "severity order (each tolerates everything before it):";
  let chain =
    [ Process_crash { at = Vtime.zero };
      Link_crash { at = Vtime.zero };
      Send_omission { p = 0.1 };
      Receive_omission { p = 0.1 };
      General_omission { p_send = 0.1; p_recv = 0.1 };
      Timing { mean = 0.1; std = 0.1 };
      Byzantine { corrupt_p = 0.1; reorder_p = 0.1; duplicate_p = 0.1 } ]
  in
  List.iter (fun m -> Printf.printf "  %d. %s\n" (severity m) (describe m)) chain
