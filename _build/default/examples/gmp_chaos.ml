(* GMP under faults: a five-daemon cluster survives a partition, heals,
   and re-merges — printing the membership timeline as it evolves.

   Run with:  dune exec examples/gmp_chaos.exe *)

open Pfi_engine
open Pfi_gmp
open Pfi_experiments

let show rig label =
  Printf.printf "%-28s" label;
  List.iter
    (fun name ->
      let v = Gmd.view (rig.Gmp_rig.node name).Gmp_rig.gmd in
      Printf.printf " %s:{%s}" name
        (String.concat "," (List.map string_of_int v.Gmd.members)))
    rig.Gmp_rig.names;
  print_newline ()

let () =
  let rig = Gmp_rig.make ~n:5 () in
  let sim = rig.Gmp_rig.sim in
  Gmp_rig.start rig ~stagger:(Vtime.sec 1) ();

  let at t label f =
    ignore
      (Sim.schedule sim ~delay:(Vtime.sec t) (fun () ->
           f ();
           show rig (Printf.sprintf "[t=%3ds] %s" t label)))
  in
  at 40 "formed" (fun () -> ());
  at 60 "partition {1,2,3}|{4,5}" (fun () ->
      Pfi_netsim.Network.partition rig.Gmp_rig.net
        [ [ "compsun1"; "compsun2"; "compsun3" ]; [ "compsun4"; "compsun5" ] ]);
  at 140 "after partition settles" (fun () -> ());
  at 160 "heal" (fun () -> Pfi_netsim.Network.heal rig.Gmp_rig.net);
  at 240 "after re-merge" (fun () -> ());
  at 260 "crash the leader" (fun () ->
      Gmd.stop (rig.Gmp_rig.node "compsun1").Gmp_rig.gmd);
  at 340 "crown prince took over" (fun () -> ());

  Sim.run ~until:(Vtime.sec 350) sim;

  print_newline ();
  print_endline "view history of compsun4 (every committed view, in order):";
  List.iter
    (fun v ->
      Printf.printf "  gid=%-9d leader=%d members={%s}\n" v.Gmd.group_id
        v.Gmd.leader
        (String.concat "," (List.map string_of_int v.Gmd.members)))
    (Gmd.view_history (rig.Gmp_rig.node "compsun4").Gmp_rig.gmd)
