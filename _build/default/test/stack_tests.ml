(* Tests for messages, codecs and layer wiring. *)

open Pfi_stack

(* ------------------------------------------------------------------ *)
(* Bytes_codec                                                        *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let w = Bytes_codec.writer () in
  Bytes_codec.u8 w 0xAB;
  Bytes_codec.u16 w 0xBEEF;
  Bytes_codec.u32 w 0xDEADBEEFl;
  Bytes_codec.u32_of_int w 123456789;
  Bytes_codec.string w "tail";
  let data = Bytes_codec.contents w in
  let r = Bytes_codec.reader data in
  Alcotest.(check int) "u8" 0xAB (Bytes_codec.read_u8 r);
  Alcotest.(check int) "u16" 0xBEEF (Bytes_codec.read_u16 r);
  Alcotest.(check int32) "u32" 0xDEADBEEFl (Bytes_codec.read_u32 r);
  Alcotest.(check int) "u32_int" 123456789 (Bytes_codec.read_u32_int r);
  Alcotest.(check string) "rest" "tail" (Bytes.to_string (Bytes_codec.read_rest r));
  Alcotest.(check int) "nothing remains" 0 (Bytes_codec.remaining r)

let test_codec_truncated () =
  let r = Bytes_codec.reader (Bytes.of_string "x") in
  ignore (Bytes_codec.read_u8 r);
  (match Bytes_codec.read_u8 r with
   | _ -> Alcotest.fail "expected Truncated"
   | exception Bytes_codec.Truncated _ -> ())

let prop_codec_u32_roundtrip =
  QCheck.Test.make ~name:"u32 roundtrips any int32" ~count:500 QCheck.int32
    (fun v ->
      let w = Bytes_codec.writer () in
      Bytes_codec.u32 w v;
      Bytes_codec.read_u32 (Bytes_codec.reader (Bytes_codec.contents w)) = v)

let prop_codec_u16_roundtrip =
  QCheck.Test.make ~name:"u16 roundtrips 0..65535" ~count:500
    QCheck.(int_bound 65535)
    (fun v ->
      let w = Bytes_codec.writer () in
      Bytes_codec.u16 w v;
      Bytes_codec.read_u16 (Bytes_codec.reader (Bytes_codec.contents w)) = v)

(* ------------------------------------------------------------------ *)
(* Message                                                            *)
(* ------------------------------------------------------------------ *)

let test_message_headers () =
  let msg = Message.of_string "payload" in
  Message.push_header msg (Bytes.of_string "HDR:");
  Alcotest.(check string) "pushed" "HDR:payload" (Message.to_string msg);
  let hdr = Message.pop_header msg 4 in
  Alcotest.(check string) "popped header" "HDR:" (Bytes.to_string hdr);
  Alcotest.(check string) "payload restored" "payload" (Message.to_string msg)

let test_message_pop_too_much () =
  let msg = Message.of_string "ab" in
  match Message.pop_header msg 5 with
  | _ -> Alcotest.fail "expected Truncated"
  | exception Bytes_codec.Truncated _ -> ()

let test_message_attrs () =
  let msg = Message.of_string "x" in
  Alcotest.(check (option string)) "absent" None (Message.get_attr msg "k");
  Message.set_attr msg "k" "v1";
  Message.set_attr msg "k" "v2";
  Alcotest.(check (option string)) "overwritten" (Some "v2") (Message.get_attr msg "k");
  Message.remove_attr msg "k";
  Alcotest.(check (option string)) "removed" None (Message.get_attr msg "k")

let test_message_copy_independent () =
  let msg = Message.of_string "abc" in
  Message.set_attr msg "k" "v";
  let dup = Message.copy msg in
  Alcotest.(check bool) "fresh id" true (Message.id dup <> Message.id msg);
  Bytes.set (Message.payload dup) 0 'X';
  Alcotest.(check string) "original unaffected" "abc" (Message.to_string msg);
  Alcotest.(check (option string)) "attrs copied" (Some "v") (Message.get_attr dup "k")

let test_message_corrupt () =
  let msg = Message.of_string "\x00\xff" in
  ignore (Message.corrupt_byte msg ~offset:0);
  Alcotest.(check int) "bit-flipped" 0xff (Char.code (Bytes.get (Message.payload msg) 0));
  ignore (Message.corrupt_byte msg ~offset:99);
  Alcotest.(check int) "oob ignored" 2 (Message.length msg);
  ignore (Message.xor_byte msg ~offset:1 ~mask:0x0f);
  Alcotest.(check int) "xor applied" 0xf0 (Char.code (Bytes.get (Message.payload msg) 1))

(* ------------------------------------------------------------------ *)
(* Layer wiring                                                       *)
(* ------------------------------------------------------------------ *)

(* A layer that tags messages so we can observe traversal order. *)
let tagging_layer ~name ~node log =
  Layer.create ~name ~node
    { on_push =
        (fun t msg ->
          log := (name ^ ".push") :: !log;
          Layer.send_down t msg);
      on_pop =
        (fun t msg ->
          log := (name ^ ".pop") :: !log;
          Layer.deliver_up t msg) }

let consuming_bottom ~node log =
  Layer.create ~name:"bottom" ~node
    { on_push = (fun _ _ -> log := "bottom.consumed" :: !log);
      on_pop = (fun _ _ -> ()) }

let consuming_top ~node log =
  Layer.create ~name:"top" ~node
    { on_push = (fun t msg -> Layer.send_down t msg);
      on_pop = (fun _ _ -> log := "top.consumed" :: !log) }

let test_stack_traversal () =
  let log = ref [] in
  let top = consuming_top ~node:"n" log in
  let mid = tagging_layer ~name:"mid" ~node:"n" log in
  let bottom = consuming_bottom ~node:"n" log in
  Layer.stack [ top; mid; bottom ];
  Layer.push top (Message.of_string "down");
  Alcotest.(check (list string)) "downward path"
    [ "mid.push"; "bottom.consumed" ] (List.rev !log);
  log := [];
  Layer.deliver_up bottom (Message.of_string "up");
  Alcotest.(check (list string)) "upward path"
    [ "mid.pop"; "top.consumed" ] (List.rev !log)

let test_insert_below () =
  let log = ref [] in
  let top = consuming_top ~node:"n" log in
  let target = tagging_layer ~name:"target" ~node:"n" log in
  let bottom = consuming_bottom ~node:"n" log in
  Layer.stack [ top; target; bottom ];
  (* splice a PFI-style layer directly under the target *)
  let pfi = tagging_layer ~name:"pfi" ~node:"n" log in
  Layer.insert_below target pfi;
  Layer.push top (Message.of_string "x");
  Alcotest.(check (list string)) "pfi sees downward traffic"
    [ "target.push"; "pfi.push"; "bottom.consumed" ] (List.rev !log);
  log := [];
  Layer.deliver_up bottom (Message.of_string "y");
  Alcotest.(check (list string)) "pfi sees upward traffic"
    [ "pfi.pop"; "target.pop"; "top.consumed" ] (List.rev !log)

let test_remove_layer () =
  let log = ref [] in
  let top = consuming_top ~node:"n" log in
  let mid = tagging_layer ~name:"mid" ~node:"n" log in
  let bottom = consuming_bottom ~node:"n" log in
  Layer.stack [ top; mid; bottom ];
  Layer.remove mid;
  Layer.push top (Message.of_string "x");
  Alcotest.(check (list string)) "mid no longer traversed"
    [ "bottom.consumed" ] (List.rev !log)

let test_send_off_stack_fails () =
  let lonely = Layer.passthrough ~name:"lonely" ~node:"n" () in
  (match Layer.send_down lonely (Message.of_string "x") with
   | _ -> Alcotest.fail "expected Failure"
   | exception Failure _ -> ());
  match Layer.deliver_up lonely (Message.of_string "x") with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let test_driver_records () =
  let log = ref [] in
  let driver = Driver.create ~node:"n" () in
  let bottom = consuming_bottom ~node:"n" log in
  Layer.stack [ Driver.layer driver; bottom ];
  Driver.send_string driver "hello";
  Alcotest.(check (list string)) "sent down" [ "bottom.consumed" ] !log;
  Layer.deliver_up bottom (Message.of_string "reply");
  Alcotest.(check int) "received" 1 (Driver.received_count driver);
  (match Driver.received driver with
   | [ m ] -> Alcotest.(check string) "content" "reply" (Message.to_string m)
   | _ -> Alcotest.fail "expected one message");
  Driver.clear_received driver;
  Alcotest.(check int) "cleared" 0 (Driver.received_count driver)

let test_driver_callback () =
  let seen = ref [] in
  let driver = Driver.create ~node:"n" () in
  Driver.set_on_receive driver (fun m -> seen := Message.to_string m :: !seen);
  let log = ref [] in
  let bottom = consuming_bottom ~node:"n" log in
  Layer.stack [ Driver.layer driver; bottom ];
  Layer.deliver_up bottom (Message.of_string "a");
  Layer.deliver_up bottom (Message.of_string "b");
  Alcotest.(check (list string)) "callback order" [ "a"; "b" ] (List.rev !seen)

let suite =
  [
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec truncation" `Quick test_codec_truncated;
    QCheck_alcotest.to_alcotest prop_codec_u32_roundtrip;
    QCheck_alcotest.to_alcotest prop_codec_u16_roundtrip;
    Alcotest.test_case "message headers" `Quick test_message_headers;
    Alcotest.test_case "message over-pop" `Quick test_message_pop_too_much;
    Alcotest.test_case "message attrs" `Quick test_message_attrs;
    Alcotest.test_case "message copy independence" `Quick test_message_copy_independent;
    Alcotest.test_case "message corruption" `Quick test_message_corrupt;
    Alcotest.test_case "stack traversal" `Quick test_stack_traversal;
    Alcotest.test_case "insert below (PFI splice)" `Quick test_insert_below;
    Alcotest.test_case "remove layer" `Quick test_remove_layer;
    Alcotest.test_case "send off stack fails" `Quick test_send_off_stack_fails;
    Alcotest.test_case "driver records deliveries" `Quick test_driver_records;
    Alcotest.test_case "driver callback" `Quick test_driver_callback;
  ]
