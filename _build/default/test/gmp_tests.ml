(* Tests for the GMP substrate: message codec, reliable layer, and the
   group membership daemon (including the re-implanted bugs). *)

open Pfi_engine
open Pfi_stack
open Pfi_netsim
open Pfi_core
open Pfi_gmp

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let m =
    Gmp_msg.make ~mtype:Gmp_msg.Membership_change ~origin:3 ~sender:1
      ~group_id:1000042 ~subject:5 ~members:[ 1; 3; 5 ] ()
  in
  match Gmp_msg.decode (Gmp_msg.encode m) with
  | Ok d ->
    Alcotest.(check bool) "same message" true (d = m);
    Alcotest.(check string) "type name" "MEMBERSHIP_CHANGE"
      (Gmp_msg.mtype_to_string d.Gmp_msg.mtype)
  | Error e -> Alcotest.failf "decode failed: %s" e

let prop_codec_roundtrip =
  let mtype_gen =
    QCheck.Gen.oneofl
      [ Gmp_msg.Heartbeat; Gmp_msg.Proclaim; Gmp_msg.Join;
        Gmp_msg.Membership_change; Gmp_msg.Mc_ack; Gmp_msg.Mc_nak;
        Gmp_msg.Commit; Gmp_msg.Dead ]
  in
  let gen =
    QCheck.make
      QCheck.Gen.(
        mtype_gen >>= fun mtype ->
        int_bound 65535 >>= fun origin ->
        int_bound 65535 >>= fun sender ->
        int_bound 1000000 >>= fun gid ->
        list_size (int_bound 8) (int_bound 65535) >>= fun members ->
        return (mtype, origin, sender, gid, members))
  in
  QCheck.Test.make ~name:"gmp codec roundtrip" ~count:300 gen
    (fun (mtype, origin, sender, gid, members) ->
      let m = Gmp_msg.make ~mtype ~origin ~sender ~group_id:gid ~members () in
      Gmp_msg.decode (Gmp_msg.encode m) = Ok m)

let test_codec_rejects_garbage () =
  (match Gmp_msg.decode (Bytes.of_string "xy") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "truncated accepted");
  match Gmp_msg.decode (Bytes.of_string "\xff\x00\x01\x00\x02\x00\x00\x00\x00\x00\x00\x00\x00") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad type accepted"

(* ------------------------------------------------------------------ *)
(* Reliable layer                                                     *)
(* ------------------------------------------------------------------ *)

type rel_node = { rel : Rel_udp.t; drv : Driver.t }

let rel_setup () =
  let sim = Sim.create ~seed:5L () in
  let net = Network.create sim in
  let make name =
    let drv = Driver.create ~node:name () in
    let rel = Rel_udp.create ~sim ~node:name () in
    let device = Network.attach net ~node:name in
    Layer.stack [ Driver.layer drv; Rel_udp.layer rel; device ];
    { rel; drv }
  in
  (sim, net, make "a", make "b")

let rel_send ?(reliable = true) n ~dst text =
  let msg = Message.of_string text in
  Message.set_attr msg Network.dst_attr dst;
  if reliable then Message.set_attr msg Rel_udp.reliable_attr "1";
  Driver.send n.drv msg

let rel_received n = List.map Message.to_string (Driver.received n.drv)

let test_rel_basic () =
  let sim, _net, a, b = rel_setup () in
  rel_send a ~dst:"b" "reliable hello";
  rel_send ~reliable:false a ~dst:"b" "raw hello";
  Sim.run ~until:(Vtime.sec 5) sim;
  Alcotest.(check (list string)) "both delivered, no duplicates"
    [ "reliable hello"; "raw hello" ] (rel_received b);
  Alcotest.(check int) "nothing pending" 0 (Rel_udp.pending_count a.rel)

let test_rel_retransmits_through_loss () =
  let sim, net, a, b = rel_setup () in
  (* block the forward path briefly: the retry must get through *)
  Network.block net ~src:"a" ~dst:"b";
  rel_send a ~dst:"b" "persistent";
  ignore
    (Sim.schedule sim ~delay:(Vtime.ms 700) (fun () ->
         Network.unblock net ~src:"a" ~dst:"b"));
  Sim.run ~until:(Vtime.sec 5) sim;
  Alcotest.(check (list string)) "delivered via retry" [ "persistent" ]
    (rel_received b)

let test_rel_dedups () =
  let sim, net, a, b = rel_setup () in
  (* block the ACK path: sender keeps retransmitting, receiver must
     deliver only one copy *)
  Network.block net ~src:"b" ~dst:"a";
  rel_send a ~dst:"b" "once only";
  Sim.run ~until:(Vtime.sec 10) sim;
  Alcotest.(check (list string)) "single delivery" [ "once only" ] (rel_received b)

let test_rel_gives_up () =
  let sim, net, a, _b = rel_setup () in
  Network.block net ~src:"a" ~dst:"b";
  rel_send a ~dst:"b" "doomed";
  Sim.run ~until:(Vtime.sec 10) sim;
  Alcotest.(check int) "gave up" 1 (Rel_udp.give_up_count a.rel);
  Alcotest.(check int) "not pending" 0 (Rel_udp.pending_count a.rel)

(* ------------------------------------------------------------------ *)
(* GMD cluster harness                                                *)
(* ------------------------------------------------------------------ *)

type gnode = { gmd : Gmd.t; pfi : Pfi_layer.t }

let cluster ?(n = 3) ?(config = Gmd.default_config) ?(seed = 21L) () =
  let sim = Sim.create ~seed () in
  let net = Network.create sim in
  let bb = Blackboard.create () in
  let names = List.init n (fun i -> (Printf.sprintf "compsun%d" (i + 1), i + 1)) in
  let nodes =
    List.map
      (fun (name, node_id) ->
        let peers = List.filter (fun (m, _) -> m <> name) names in
        let gmd = Gmd.create ~sim ~node:name ~id:node_id ~peers ~config () in
        let pfi =
          Pfi_layer.create ~sim ~node:name ~stub:Gmp_stub.stub ~blackboard:bb ()
        in
        let rel = Rel_udp.create ~sim ~node:name () in
        let device = Network.attach net ~node:name in
        Layer.stack [ Gmd.layer gmd; Rel_udp.layer rel; Pfi_layer.layer pfi; device ];
        (name, { gmd; pfi }))
      names
  in
  Pfi_layer.connect (List.map (fun (_, gn) -> gn.pfi) nodes);
  (sim, net, fun name -> List.assoc name nodes)

let start_all sim node names ~stagger =
  List.iteri
    (fun i name ->
      ignore
        (Sim.schedule sim ~delay:(Vtime.mul stagger i) (fun () ->
             Gmd.start (node name).gmd)))
    names

let members_of gn = (Gmd.view gn.gmd).Gmd.members

let test_group_formation () =
  let sim, _net, node = cluster ~n:3 () in
  start_all sim node [ "compsun1"; "compsun2"; "compsun3" ] ~stagger:(Vtime.sec 1);
  Sim.run ~until:(Vtime.sec 60) sim;
  List.iter
    (fun name ->
      let gn = node name in
      Alcotest.(check (list int)) (name ^ " members") [ 1; 2; 3 ] (members_of gn);
      Alcotest.(check int) (name ^ " leader") 1 (Gmd.view gn.gmd).Gmd.leader)
    [ "compsun1"; "compsun2"; "compsun3" ]

let test_views_agree_on_gid () =
  let sim, _net, node = cluster ~n:4 () in
  start_all sim node
    [ "compsun1"; "compsun2"; "compsun3"; "compsun4" ]
    ~stagger:(Vtime.sec 2);
  Sim.run ~until:(Vtime.sec 90) sim;
  let v1 = Gmd.view (node "compsun1").gmd in
  List.iter
    (fun name ->
      let v = Gmd.view (node name).gmd in
      Alcotest.(check int) (name ^ " same gid") v1.Gmd.group_id v.Gmd.group_id;
      Alcotest.(check (list int)) (name ^ " same members") v1.Gmd.members v.Gmd.members)
    [ "compsun2"; "compsun3"; "compsun4" ]

let test_crash_detected () =
  let sim, _net, node = cluster ~n:3 () in
  start_all sim node [ "compsun1"; "compsun2"; "compsun3" ] ~stagger:(Vtime.sec 1);
  (* crash the non-leader compsun3 at t=60 s *)
  ignore (Sim.schedule sim ~delay:(Vtime.sec 60) (fun () -> Gmd.stop (node "compsun3").gmd));
  Sim.run ~until:(Vtime.sec 120) sim;
  Alcotest.(check (list int)) "survivors regroup" [ 1; 2 ]
    (members_of (node "compsun1"));
  Alcotest.(check (list int)) "both agree" [ 1; 2 ] (members_of (node "compsun2"))

let test_leader_crash_crown_prince () =
  let sim, _net, node = cluster ~n:3 () in
  start_all sim node [ "compsun1"; "compsun2"; "compsun3" ] ~stagger:(Vtime.sec 1);
  ignore (Sim.schedule sim ~delay:(Vtime.sec 60) (fun () -> Gmd.stop (node "compsun1").gmd));
  Sim.run ~until:(Vtime.sec 150) sim;
  Alcotest.(check (list int)) "survivors" [ 2; 3 ] (members_of (node "compsun2"));
  Alcotest.(check int) "crown prince leads" 2 (Gmd.view (node "compsun2").gmd).Gmd.leader;
  Alcotest.(check bool) "takeover traced" true
    (Trace.count ~node:"compsun2" ~tag:"gmp.takeover" (Sim.trace sim) >= 1)

let test_partition_and_remerge () =
  let sim, net, node = cluster ~n:5 () in
  let names = List.init 5 (fun i -> Printf.sprintf "compsun%d" (i + 1)) in
  start_all sim node names ~stagger:(Vtime.sec 1);
  ignore
    (Sim.schedule sim ~delay:(Vtime.sec 60) (fun () ->
         Network.partition net
           [ [ "compsun1"; "compsun2"; "compsun3" ]; [ "compsun4"; "compsun5" ] ]));
  Sim.run ~until:(Vtime.sec 150) sim;
  Alcotest.(check (list int)) "majority group" [ 1; 2; 3 ]
    (members_of (node "compsun1"));
  Alcotest.(check (list int)) "minority group" [ 4; 5 ]
    (members_of (node "compsun4"));
  Alcotest.(check int) "minority leader" 4 (Gmd.view (node "compsun4").gmd).Gmd.leader;
  (* heal: one group again *)
  Network.heal net;
  Sim.run ~until:(Vtime.sec 300) sim;
  List.iter
    (fun name ->
      Alcotest.(check (list int)) (name ^ " merged") [ 1; 2; 3; 4; 5 ]
        (members_of (node name)))
    names

let test_suspend_resume_like_timeout () =
  let sim, _net, node = cluster ~n:3 () in
  start_all sim node [ "compsun1"; "compsun2"; "compsun3" ] ~stagger:(Vtime.sec 1);
  ignore (Sim.schedule sim ~delay:(Vtime.sec 60) (fun () -> Gmd.suspend (node "compsun3").gmd));
  ignore (Sim.schedule sim ~delay:(Vtime.sec 90) (fun () -> Gmd.resume (node "compsun3").gmd));
  Sim.run ~until:(Vtime.sec 200) sim;
  (* with the fix, the suspended daemon rejoins after resuming *)
  Alcotest.(check (list int)) "suspended node rejoined" [ 1; 2; 3 ]
    (members_of (node "compsun3"))

(* --- bug reproductions ------------------------------------------- *)

let buggy base = { base with Gmd.bugs = Gmd.all_bugs }

let test_self_death_bug () =
  (* drop compsun3's heartbeats to itself: the buggy daemon announces
     its own death, stays in the group marked down, and breaks
     proclaim forwarding *)
  let config = buggy Gmd.default_config in
  let sim, _net, node = cluster ~n:3 ~config () in
  start_all sim node [ "compsun1"; "compsun2"; "compsun3" ] ~stagger:(Vtime.sec 1);
  ignore
    (Sim.schedule sim ~delay:(Vtime.sec 40) (fun () ->
         Pfi_layer.set_send_filter (node "compsun3").pfi
           {|
if {[msg_type cur_msg] == "HEARTBEAT" && [msg_attr cur_msg net.dst] == "compsun3"} {
  xDrop cur_msg
}
|}));
  Sim.run ~until:(Vtime.sec 120) sim;
  let gn = node "compsun3" in
  Alcotest.(check bool) "self-dead event traced" true
    (Trace.count ~node:"compsun3" ~tag:"gmp.self-dead" (Sim.trace sim) >= 1);
  Alcotest.(check bool) "marked down, not singleton" true (Gmd.self_marked_down gn.gmd);
  Alcotest.(check bool) "stayed in old group (bug)" true
    (List.length (members_of gn) > 1)

let test_self_death_fixed () =
  let sim, _net, node = cluster ~n:3 () in
  start_all sim node [ "compsun1"; "compsun2"; "compsun3" ] ~stagger:(Vtime.sec 1);
  let installed = ref false in
  ignore
    (Sim.schedule sim ~delay:(Vtime.sec 40) (fun () ->
         installed := true;
         Pfi_layer.set_send_filter (node "compsun3").pfi
           {|
if {[msg_type cur_msg] == "HEARTBEAT" && [msg_attr cur_msg net.dst] == "compsun3"} {
  xDrop cur_msg
}
|}));
  Sim.run ~until:(Vtime.sec 120) sim;
  ignore !installed;
  let gn = node "compsun3" in
  Alcotest.(check bool) "no buggy self-dead state" false (Gmd.self_marked_down gn.gmd);
  Alcotest.(check bool) "formed singleton at some point" true
    (Trace.count ~node:"compsun3" ~tag:"gmp.singleton" (Sim.trace sim) >= 2)

let test_proclaim_forwarding_bug_loops () =
  let config = { Gmd.default_config with Gmd.bugs = { Gmd.no_bugs with Gmd.proclaim_reply_to_sender = true } } in
  let sim, _net, node = cluster ~n:3 ~config () in
  (* form a group of 1 and 2 first; compsun3 arrives later and its
     proclaims to the leader are dropped, so only the crown prince
     forwards them *)
  start_all sim node [ "compsun1"; "compsun2" ] ~stagger:(Vtime.sec 1);
  ignore
    (Sim.schedule sim ~delay:(Vtime.sec 30) (fun () ->
         Pfi_layer.set_send_filter (node "compsun3").pfi
           {|
if {[msg_type cur_msg] == "PROCLAIM" && [msg_attr cur_msg net.dst] == "compsun1"} {
  xDrop cur_msg
}
|};
         Gmd.start (node "compsun3").gmd));
  Sim.run ~until:(Vtime.sec 45) sim;
  (* the vicious cycle: forwarder and leader bounce proclaims *)
  let forwards = Trace.count ~node:"compsun2" ~tag:"gmp.proclaim-fwd" (Sim.trace sim) in
  Alcotest.(check bool) "proclaim loop detected" true (forwards > 20);
  Alcotest.(check bool) "compsun3 never admitted" true
    (not (List.mem 3 (members_of (node "compsun1"))))

let test_proclaim_forwarding_fixed () =
  let sim, _net, node = cluster ~n:3 () in
  start_all sim node [ "compsun1"; "compsun2" ] ~stagger:(Vtime.sec 1);
  ignore
    (Sim.schedule sim ~delay:(Vtime.sec 30) (fun () ->
         Pfi_layer.set_send_filter (node "compsun3").pfi
           {|
if {[msg_type cur_msg] == "PROCLAIM" && [msg_attr cur_msg net.dst] == "compsun1"} {
  xDrop cur_msg
}
|};
         Gmd.start (node "compsun3").gmd));
  Sim.run ~until:(Vtime.sec 120) sim;
  Alcotest.(check (list int)) "admitted via forwarded proclaim" [ 1; 2; 3 ]
    (members_of (node "compsun1"));
  let forwards = Trace.count ~node:"compsun2" ~tag:"gmp.proclaim-fwd" (Sim.trace sim) in
  Alcotest.(check bool) "no loop" true (forwards < 20)

let timer_test_filter = {|
set t [msg_type cur_msg]
if {$t == "MEMBERSHIP_CHANGE"} {
  set mc_seen [expr {[bb_get mc2_seen 0] + 1}]
  bb_set mc2_seen $mc_seen
  if {$mc_seen >= 2} { bb_set dropping 1 }
}
if {[bb_get dropping 0] == 1 && ($t == "COMMIT" || $t == "HEARTBEAT")} {
  xDrop cur_msg
}
|}

let test_timer_unset_bug () =
  let config = { Gmd.default_config with Gmd.bugs = { Gmd.no_bugs with Gmd.timer_unset_inverted = true } } in
  let sim, _net, node = cluster ~n:3 ~config () in
  (* compsun2 joins one group; on the second membership change it drops
     COMMIT and heartbeats: with the bug, a heartbeat-expect timer fires
     while in transition *)
  Pfi_layer.set_receive_filter (node "compsun2").pfi timer_test_filter;
  start_all sim node [ "compsun1"; "compsun2" ] ~stagger:(Vtime.sec 1);
  ignore
    (Sim.schedule sim ~delay:(Vtime.sec 30) (fun () ->
         Gmd.start (node "compsun3").gmd));
  Sim.run ~until:(Vtime.sec 60) sim;
  Alcotest.(check bool) "spurious timeout in transition (bug)" true
    (Trace.count ~node:"compsun2" ~tag:"gmp.spurious-timeout" (Sim.trace sim) >= 1)

let test_timer_unset_fixed () =
  let sim, _net, node = cluster ~n:3 () in
  Pfi_layer.set_receive_filter (node "compsun2").pfi timer_test_filter;
  start_all sim node [ "compsun1"; "compsun2" ] ~stagger:(Vtime.sec 1);
  ignore
    (Sim.schedule sim ~delay:(Vtime.sec 30) (fun () ->
         Gmd.start (node "compsun3").gmd));
  Sim.run ~until:(Vtime.sec 60) sim;
  Alcotest.(check int) "no spurious timeouts" 0
    (Trace.count ~node:"compsun2" ~tag:"gmp.spurious-timeout" (Sim.trace sim))

let test_armed_timers_introspection () =
  let sim, _net, node = cluster ~n:2 () in
  start_all sim node [ "compsun1"; "compsun2" ] ~stagger:(Vtime.sec 1);
  Sim.run ~until:(Vtime.sec 30) sim;
  let timers = Gmd.armed_timers (node "compsun1").gmd in
  Alcotest.(check bool) "hb_send armed" true (List.mem "hb_send" timers);
  Alcotest.(check bool) "expect_2 armed" true (List.mem "expect_2" timers)

(* --- GMP stub ----------------------------------------------------- *)

let test_gmp_stub () =
  let m =
    Gmp_msg.make ~mtype:Gmp_msg.Commit ~origin:1 ~sender:1 ~group_id:7
      ~members:[ 1; 2 ] ()
  in
  let wire = Message.create (Rel_udp.wrap_raw (Gmp_msg.encode m)) in
  Alcotest.(check string) "type through rel header" "COMMIT"
    (Gmp_stub.stub.Stubs.msg_type wire);
  Alcotest.(check (option string)) "origin" (Some "1")
    (Gmp_stub.stub.Stubs.get_field wire "origin");
  Alcotest.(check (option string)) "members" (Some "1,2")
    (Gmp_stub.stub.Stubs.get_field wire "members")

let test_gmp_stub_generate () =
  match
    Gmp_stub.stub.Stubs.generate
      [ ("type", "PROCLAIM"); ("origin", "9"); ("sender", "9"); ("dst", "compsun1") ]
  with
  | Some msg ->
    Alcotest.(check string) "generated type" "PROCLAIM"
      (Gmp_stub.stub.Stubs.msg_type msg)
  | None -> Alcotest.fail "generate failed"

let suite =
  [
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
    Alcotest.test_case "rel basic" `Quick test_rel_basic;
    Alcotest.test_case "rel retransmits" `Quick test_rel_retransmits_through_loss;
    Alcotest.test_case "rel dedups" `Quick test_rel_dedups;
    Alcotest.test_case "rel gives up" `Quick test_rel_gives_up;
    Alcotest.test_case "group formation" `Quick test_group_formation;
    Alcotest.test_case "views agree" `Quick test_views_agree_on_gid;
    Alcotest.test_case "crash detected" `Quick test_crash_detected;
    Alcotest.test_case "crown prince takeover" `Quick test_leader_crash_crown_prince;
    Alcotest.test_case "partition and remerge" `Quick test_partition_and_remerge;
    Alcotest.test_case "suspend/resume" `Quick test_suspend_resume_like_timeout;
    Alcotest.test_case "self-death bug" `Quick test_self_death_bug;
    Alcotest.test_case "self-death fixed" `Quick test_self_death_fixed;
    Alcotest.test_case "proclaim forwarding bug loops" `Quick test_proclaim_forwarding_bug_loops;
    Alcotest.test_case "proclaim forwarding fixed" `Quick test_proclaim_forwarding_fixed;
    Alcotest.test_case "timer unset bug" `Quick test_timer_unset_bug;
    Alcotest.test_case "timer unset fixed" `Quick test_timer_unset_fixed;
    Alcotest.test_case "armed timers introspection" `Quick test_armed_timers_introspection;
    Alcotest.test_case "gmp stub recognition" `Quick test_gmp_stub;
    Alcotest.test_case "gmp stub generation" `Quick test_gmp_stub_generate;
  ]
