(* Tests for the TCP substrate: sequence arithmetic, segment codec, and
   the protocol engine behaviours the paper's experiments probe. *)

open Pfi_engine
open Pfi_stack
open Pfi_netsim
open Pfi_tcp

(* ------------------------------------------------------------------ *)
(* Seq32                                                              *)
(* ------------------------------------------------------------------ *)

let test_seq32_wraparound () =
  let near_top = Seq32.of_int (Seq32.modulus - 10) in
  let wrapped = Seq32.add near_top 20 in
  Alcotest.(check int) "wraps" 10 wrapped;
  Alcotest.(check bool) "wrapped > near_top" true (Seq32.gt wrapped near_top);
  Alcotest.(check int) "diff across wrap" 20 (Seq32.diff wrapped near_top);
  Alcotest.(check int) "negative diff" (-20) (Seq32.diff near_top wrapped)

let test_seq32_window () =
  Alcotest.(check bool) "in window" true (Seq32.in_window 105 ~base:100 ~size:10);
  Alcotest.(check bool) "below window" false (Seq32.in_window 99 ~base:100 ~size:10);
  Alcotest.(check bool) "at end" false (Seq32.in_window 110 ~base:100 ~size:10);
  Alcotest.(check bool) "wrap window" true
    (Seq32.in_window 3 ~base:(Seq32.modulus - 5) ~size:10)

let prop_seq32_diff_inverse =
  QCheck.Test.make ~name:"seq32 add/diff inverse" ~count:500
    QCheck.(pair (int_bound (Seq32.modulus - 1)) (int_range (-1000000) 1000000))
    (fun (base, delta) ->
      let b = Seq32.of_int base in
      Seq32.diff (Seq32.add b delta) b = delta)

(* ------------------------------------------------------------------ *)
(* Segment codec                                                      *)
(* ------------------------------------------------------------------ *)

let seg ?(payload = "") ?(flags = Segment.flag_ack) ?(seq = 100) ?(ack = 200) () =
  Segment.make ~payload:(Bytes.of_string payload) ~src_port:1234 ~dst_port:80
    ~seq:(Seq32.of_int seq) ~ack:(Seq32.of_int ack) ~flags ~window:4096 ()

let test_segment_roundtrip () =
  let original = seg ~payload:"hello tcp" () in
  match Segment.decode (Segment.encode original) with
  | Ok decoded ->
    Alcotest.(check int) "sport" 1234 decoded.Segment.src_port;
    Alcotest.(check int) "dport" 80 decoded.Segment.dst_port;
    Alcotest.(check int) "seq" 100 decoded.Segment.seq;
    Alcotest.(check int) "ack" 200 decoded.Segment.ack;
    Alcotest.(check int) "window" 4096 decoded.Segment.window;
    Alcotest.(check string) "payload" "hello tcp"
      (Bytes.to_string decoded.Segment.payload);
    Alcotest.(check bool) "ack flag" true decoded.Segment.flags.Segment.ack
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_segment_checksum_detects_corruption () =
  let data = Segment.encode (seg ~payload:"payload" ()) in
  Bytes.set data 25 'X';
  match Segment.decode data with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted segment decoded successfully"

let test_segment_kinds () =
  Alcotest.(check string) "syn" "SYN" (Segment.kind (seg ~flags:Segment.flag_syn ()));
  Alcotest.(check string) "syn-ack" "SYN-ACK"
    (Segment.kind (seg ~flags:Segment.flag_syn_ack ()));
  Alcotest.(check string) "rst" "RST" (Segment.kind (seg ~flags:Segment.flag_rst ()));
  Alcotest.(check string) "fin" "FIN" (Segment.kind (seg ~flags:Segment.flag_fin_ack ()));
  Alcotest.(check string) "data" "DATA" (Segment.kind (seg ~payload:"x" ()));
  Alcotest.(check string) "ack" "ACK" (Segment.kind (seg ()))

let prop_segment_roundtrip =
  let gen =
    QCheck.(quad (int_bound 65535) (int_bound 65535)
              (int_bound (Seq32.modulus - 1))
              (string_gen_of_size (Gen.int_bound 64) Gen.char))
  in
  QCheck.Test.make ~name:"segment encode/decode roundtrip" ~count:300 gen
    (fun (sport, dport, seqno, payload) ->
      let original =
        Segment.make ~payload:(Bytes.of_string payload) ~src_port:sport
          ~dst_port:dport ~seq:seqno ~ack:(Seq32.of_int 7) ~flags:Segment.flag_ack
          ~window:1024 ()
      in
      match Segment.decode (Segment.encode original) with
      | Ok d ->
        d.Segment.src_port = sport && d.Segment.dst_port = dport
        && d.Segment.seq = seqno
        && Bytes.to_string d.Segment.payload = payload
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Engine scenarios                                                   *)
(* ------------------------------------------------------------------ *)

type host = { tcp : Tcp.t }

let make_host ~sim ~net ~name ~profile =
  let tcp = Tcp.create ~sim ~node:name ~profile () in
  let ip = Ip_lite.create ~node:name in
  let device = Network.attach net ~node:name in
  Layer.stack [ Tcp.layer tcp; ip; device ];
  { tcp }

let setup ?(client_profile = Profile.xkernel) ?(server_profile = Profile.xkernel) () =
  let sim = Sim.create ~seed:11L () in
  let net = Network.create sim in
  let client = make_host ~sim ~net ~name:"client" ~profile:client_profile in
  let server = make_host ~sim ~net ~name:"server" ~profile:server_profile in
  Tcp.listen server.tcp ~port:80;
  (sim, net, client, server)

let establish ?client_profile ?server_profile () =
  let sim, net, client, server = setup ?client_profile ?server_profile () in
  let server_conn = ref None in
  Tcp.on_accept server.tcp (fun c -> server_conn := Some c);
  let conn = Tcp.connect client.tcp ~dst:"server" ~dst_port:80 () in
  Sim.run sim;
  let sconn = match !server_conn with Some c -> c | None -> Alcotest.fail "no accept" in
  (sim, net, client, server, conn, sconn)

let test_handshake () =
  let _sim, _net, _client, _server, conn, sconn = establish () in
  Alcotest.(check string) "client established" "ESTABLISHED"
    (Tcp.state_to_string (Tcp.state conn));
  Alcotest.(check string) "server established" "ESTABLISHED"
    (Tcp.state_to_string (Tcp.state sconn))

let test_data_transfer () =
  let sim, _net, _client, _server, conn, sconn = establish () in
  let got = Buffer.create 64 in
  Tcp.on_data sconn (Buffer.add_string got);
  Tcp.send conn "hello, world";
  Sim.run sim;
  Alcotest.(check string) "data delivered" "hello, world" (Buffer.contents got)

let test_large_transfer_segmented () =
  let sim, _net, _client, _server, conn, sconn = establish () in
  let got = Buffer.create 4096 in
  Tcp.on_data sconn (Buffer.add_string got);
  let data = String.init 3000 (fun i -> Char.chr (i mod 256)) in
  Tcp.send conn data;
  Sim.run sim;
  Alcotest.(check int) "all bytes" 3000 (Buffer.length got);
  Alcotest.(check string) "content preserved" data (Buffer.contents got)

let test_bidirectional () =
  let sim, _net, _client, _server, conn, sconn = establish () in
  let client_got = Buffer.create 64 and server_got = Buffer.create 64 in
  Tcp.on_data conn (Buffer.add_string client_got);
  Tcp.on_data sconn (Buffer.add_string server_got);
  Tcp.send conn "ping";
  Tcp.send sconn "pong";
  Sim.run sim;
  Alcotest.(check string) "server got" "ping" (Buffer.contents server_got);
  Alcotest.(check string) "client got" "pong" (Buffer.contents client_got)

let test_retransmission_recovers_loss () =
  let sim, net, _client, _server, conn, sconn = establish () in
  let got = Buffer.create 64 in
  Tcp.on_data sconn (Buffer.add_string got);
  (* drop exactly the next client->server transmission *)
  Network.block net ~src:"client" ~dst:"server";
  Tcp.send conn "persistent";
  ignore
    (Sim.schedule sim ~delay:(Vtime.ms 100) (fun () ->
         Network.unblock net ~src:"client" ~dst:"server"));
  Sim.run sim;
  Alcotest.(check string) "recovered by retransmission" "persistent"
    (Buffer.contents got);
  Alcotest.(check bool) "at least one retransmit" true
    (Tcp.total_retransmits conn >= 1)

let test_retransmission_backoff_and_reset () =
  (* Experiment 1's mechanism: server goes silent; a BSD profile
     retransmits max_data_retries times with exponential backoff capped
     at 64 s, then sends RST and closes *)
  let sim, net, _client, _server, conn, sconn = establish () in
  ignore sconn;
  Network.block net ~src:"server" ~dst:"client";
  Network.block net ~src:"client" ~dst:"server";
  Tcp.send conn "into the void";
  Sim.run ~until:(Vtime.hours 2) sim;
  Alcotest.(check string) "connection dropped" "CLOSED"
    (Tcp.state_to_string (Tcp.state conn));
  Alcotest.(check (option string)) "close reason" (Some "rexmt-exhausted")
    (Tcp.close_reason conn);
  Alcotest.(check int) "12 retransmissions (BSD)" 12 (Tcp.total_retransmits conn);
  (* retransmission intervals double and plateau *)
  let intervals = Trace.intervals ~node:"client" ~tag:"tcp.retransmit" (Sim.trace sim) in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> Vtime.(a <= b) && nondecreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "backoff nondecreasing" true (nondecreasing intervals);
  (match List.rev intervals with
   | last :: _ ->
     Alcotest.(check bool) "plateau at 64 s" true (Vtime.equal last (Vtime.sec 64))
   | [] -> Alcotest.fail "no retransmissions traced");
  (* a RST was sent when giving up *)
  Alcotest.(check bool) "RST sent" true
    (Trace.count ~node:"client" ~tag:"tcp.rst-sent" (Sim.trace sim) >= 1)

let test_solaris_no_rst_fewer_retries () =
  let sim, net, _client, _server, conn, _sconn =
    establish ~client_profile:Profile.solaris_23 ()
  in
  Network.block net ~src:"server" ~dst:"client";
  Network.block net ~src:"client" ~dst:"server";
  Tcp.send conn "into the void";
  Sim.run ~until:(Vtime.hours 1) sim;
  Alcotest.(check string) "dropped" "CLOSED" (Tcp.state_to_string (Tcp.state conn));
  Alcotest.(check int) "9 retransmissions (Solaris)" 9 (Tcp.total_retransmits conn);
  Alcotest.(check int) "no RST (Solaris closes silently)" 0
    (Trace.count ~node:"client" ~tag:"tcp.rst-sent" (Sim.trace sim))

let test_rtt_adaptation () =
  (* BSD profile adapts its RTO to a slow link *)
  let sim, net, _client, _server, conn, sconn = establish () in
  Network.set_latency net ~src:"client" ~dst:"server" (Vtime.ms 1500);
  Network.set_latency net ~src:"server" ~dst:"client" (Vtime.ms 1500);
  ignore sconn;
  (* space the sends out so each segment is individually RTT-timed *)
  for i = 1 to 20 do
    ignore
      (Sim.schedule sim ~delay:(Vtime.sec (4 * i)) (fun () ->
           Tcp.send conn "0123456789"))
  done;
  Sim.run sim;
  (match Tcp.srtt conn with
   | Some srtt ->
     Alcotest.(check bool) "srtt near 3 s" true
       Vtime.(srtt > Vtime.ms 2500 && srtt < Vtime.ms 3500)
   | None -> Alcotest.fail "no RTT estimate");
  Alcotest.(check bool) "rto above rtt" true
    Vtime.(Tcp.current_rto conn >= Vtime.sec 3)

let test_solaris_ignores_rtt () =
  let sim, net, _client, _server, conn, _sconn =
    establish ~client_profile:Profile.solaris_23 ()
  in
  Network.set_latency net ~src:"client" ~dst:"server" (Vtime.ms 400);
  Network.set_latency net ~src:"server" ~dst:"client" (Vtime.ms 400);
  for _ = 1 to 10 do
    Tcp.send conn "0123456789"
  done;
  Sim.run ~until:(Vtime.sec 60) sim;
  Alcotest.(check bool) "rto stays at floor" true
    Vtime.(Tcp.current_rto conn <= Vtime.ms 340)

let test_out_of_order_queued () =
  (* Experiment 5: receivers queue out-of-order segments and ack both
     once the gap fills *)
  let sim, _net, _client, server, conn, sconn = establish () in
  let got = Buffer.create 64 in
  Tcp.on_data sconn (Buffer.add_string got);
  ignore server;
  (* forge out-of-order arrival by injecting segments directly *)
  let base = Tcp.rcv_nxt sconn in
  let seg2 =
    Segment.make ~payload:(Bytes.of_string "BBBB") ~src_port:(Tcp.local_port conn)
      ~dst_port:80 ~seq:(Seq32.add base 4) ~ack:(Tcp.rcv_nxt conn)
      ~flags:Segment.flag_ack ~window:4096 ()
  in
  let seg1 =
    Segment.make ~payload:(Bytes.of_string "AAAA") ~src_port:(Tcp.local_port conn)
      ~dst_port:80 ~seq:base ~ack:(Tcp.rcv_nxt conn) ~flags:Segment.flag_ack
      ~window:4096 ()
  in
  let deliver s =
    let msg = Segment.to_message s ~dst:"server" in
    Message.set_attr msg Network.src_attr "client";
    Layer.pop (Tcp.layer server.tcp) msg
  in
  deliver seg2;  (* arrives first although later in sequence space *)
  Alcotest.(check string) "gap: nothing delivered" "" (Buffer.contents got);
  deliver seg1;
  Sim.run sim;
  Alcotest.(check string) "both delivered in order" "AAAABBBB" (Buffer.contents got);
  Alcotest.(check int) "rcv_nxt covers both" 8 (Seq32.diff (Tcp.rcv_nxt sconn) base)

let test_zero_window_and_persist () =
  (* Experiment 4's mechanism: receiver stops consuming; sender probes
     the zero window with backoff capped at persist_max, indefinitely *)
  let sim, _net, _client, _server, conn, sconn = establish () in
  Tcp.set_auto_consume sconn false;
  (* fill the 4096-byte receive buffer *)
  Tcp.send conn (String.make 4096 'x');
  Sim.run sim;
  Alcotest.(check int) "window closed" 0 (Tcp.advertised_window sconn);
  Alcotest.(check int) "sender sees zero window" 0 (Tcp.peer_window conn);
  (* queue more data: must trigger persist probing *)
  Tcp.send conn "blocked";
  Sim.run ~until:(Vtime.minutes 30) sim;
  let probes = Trace.count ~node:"client" ~tag:"tcp.persist-probe" (Sim.trace sim) in
  Alcotest.(check bool) "probing continues indefinitely" true (probes >= 20);
  let intervals =
    Trace.intervals ~node:"client" ~tag:"tcp.persist-probe" (Sim.trace sim)
  in
  (match List.rev intervals with
   | last :: _ ->
     Alcotest.(check bool) "interval capped at 60 s" true
       (Vtime.equal last (Vtime.sec 60))
   | [] -> Alcotest.fail "no probe intervals");
  Alcotest.(check string) "connection still open" "ESTABLISHED"
    (Tcp.state_to_string (Tcp.state conn));
  (* now the app reads: window reopens, blocked data flows *)
  let got = ref "" in
  Tcp.on_data sconn (fun s -> got := !got ^ s);
  ignore (Tcp.read sconn 4096);
  Tcp.set_auto_consume sconn true;
  Sim.run ~until:(Vtime.minutes 32) sim;
  Alcotest.(check string) "blocked data arrives after window opens" "blocked" !got

let test_keepalive_bsd () =
  (* idle connection with keep-alive on; peer unplugged: 8 probes at
     75 s intervals after the 7200 s idle threshold, then RST + close *)
  let sim, net, _client, _server, conn, _sconn = establish () in
  Tcp.set_keepalive conn true;
  Network.unplug net "server";
  Sim.run ~until:(Vtime.sec 9000) sim;
  let probes = Trace.count ~node:"client" ~tag:"tcp.keepalive-probe" (Sim.trace sim) in
  Alcotest.(check int) "9 probes total (first + 8 retries)" 9 probes;
  let stamps = Trace.timestamps ~node:"client" ~tag:"tcp.keepalive-probe" (Sim.trace sim) in
  (match stamps with
   | first :: _ ->
     Alcotest.(check bool) "first probe at ~7200 s" true
       Vtime.(first >= Vtime.sec 7200 && first < Vtime.sec 7205)
   | [] -> Alcotest.fail "no probes");
  let intervals = Trace.intervals ~node:"client" ~tag:"tcp.keepalive-probe" (Sim.trace sim) in
  List.iter
    (fun i -> Alcotest.(check bool) "75 s apart" true (Vtime.equal i (Vtime.sec 75)))
    intervals;
  Alcotest.(check (option string)) "closed by keepalive" (Some "keepalive-exhausted")
    (Tcp.close_reason conn);
  Alcotest.(check bool) "RST sent" true
    (Trace.count ~node:"client" ~tag:"tcp.rst-sent" (Sim.trace sim) >= 1)

let test_keepalive_acked_repeats () =
  (* probes answered: connection stays up, probes ~7200 s apart *)
  let sim, _net, _client, _server, conn, _sconn = establish () in
  Tcp.set_keepalive conn true;
  Sim.run ~until:(Vtime.hours 8) sim;
  let probes = Trace.count ~node:"client" ~tag:"tcp.keepalive-probe" (Sim.trace sim) in
  Alcotest.(check bool) "several probes over 8 h" true (probes >= 3);
  Alcotest.(check string) "still established" "ESTABLISHED"
    (Tcp.state_to_string (Tcp.state conn));
  let intervals = Trace.intervals ~node:"client" ~tag:"tcp.keepalive-probe" (Sim.trace sim) in
  List.iter
    (fun i ->
      Alcotest.(check bool) "~7200 s apart" true
        Vtime.(i >= Vtime.sec 7199 && i <= Vtime.sec 7205))
    intervals

let test_keepalive_solaris () =
  let sim, net, _client, _server, conn, _sconn =
    establish ~client_profile:Profile.solaris_23 ()
  in
  Tcp.set_keepalive conn true;
  Network.unplug net "server";
  Sim.run ~until:(Vtime.sec 8000) sim;
  let stamps = Trace.timestamps ~node:"client" ~tag:"tcp.keepalive-probe" (Sim.trace sim) in
  (match stamps with
   | first :: _ ->
     Alcotest.(check bool) "first probe at ~6752 s (spec violation)" true
       Vtime.(first >= Vtime.sec 6752 && first < Vtime.sec 6755)
   | [] -> Alcotest.fail "no probes");
  Alcotest.(check int) "8 probes (first + 7 backoff retries)" 8 (List.length stamps);
  Alcotest.(check (option string)) "closed silently" (Some "keepalive-exhausted")
    (Tcp.close_reason conn);
  Alcotest.(check int) "no RST" 0
    (Trace.count ~node:"client" ~tag:"tcp.rst-sent" (Sim.trace sim))

let test_orderly_close () =
  let sim, _net, _client, _server, conn, sconn = establish () in
  Tcp.send conn "bye";
  Tcp.close conn;
  Sim.run ~until:(Vtime.sec 10) sim;
  Alcotest.(check string) "passive side close_wait" "CLOSE_WAIT"
    (Tcp.state_to_string (Tcp.state sconn));
  Tcp.close sconn;
  Sim.run ~until:(Vtime.sec 200) sim;
  Alcotest.(check string) "active side closed" "CLOSED"
    (Tcp.state_to_string (Tcp.state conn));
  Alcotest.(check string) "passive side closed" "CLOSED"
    (Tcp.state_to_string (Tcp.state sconn))

let test_abort_sends_rst () =
  let sim, _net, _client, _server, conn, sconn = establish () in
  Tcp.abort conn;
  Sim.run sim;
  Alcotest.(check string) "aborted" "CLOSED" (Tcp.state_to_string (Tcp.state conn));
  Alcotest.(check string) "peer reset" "CLOSED" (Tcp.state_to_string (Tcp.state sconn));
  Alcotest.(check (option string)) "peer saw reset" (Some "reset-received")
    (Tcp.close_reason sconn)

let test_stray_segment_gets_rst () =
  let sim, _net, client, server, _conn, _sconn = establish () in
  ignore server;
  (* a segment to a port nobody listens on *)
  let stray =
    Segment.make ~src_port:5555 ~dst_port:4242 ~seq:1 ~ack:0
      ~flags:Segment.flag_ack ~window:0 ()
  in
  Layer.send_down (Tcp.layer client.tcp) (Segment.to_message stray ~dst:"server");
  Sim.run sim;
  Alcotest.(check bool) "server sent RST" true
    (Trace.count ~node:"server" ~tag:"tcp.rst-sent" (Sim.trace sim) >= 1)

let test_corrupted_segment_dropped () =
  let sim, _net, _client, server, conn, sconn = establish () in
  let got = Buffer.create 8 in
  Tcp.on_data sconn (Buffer.add_string got);
  (* deliver a corrupted data segment directly: checksum must reject *)
  let s =
    Segment.make ~payload:(Bytes.of_string "evil") ~src_port:(Tcp.local_port conn)
      ~dst_port:80 ~seq:(Tcp.rcv_nxt sconn) ~ack:(Tcp.rcv_nxt conn)
      ~flags:Segment.flag_ack ~window:4096 ()
  in
  let wire = Segment.encode s in
  Bytes.set wire 22 'X';
  let msg = Message.create wire in
  Message.set_attr msg Network.src_attr "client";
  Layer.pop (Tcp.layer server.tcp) msg;
  Sim.run sim;
  Alcotest.(check string) "payload rejected" "" (Buffer.contents got);
  Alcotest.(check bool) "bad segment traced" true
    (Trace.count ~node:"server" ~tag:"tcp.bad-segment" (Sim.trace sim) >= 1)

let test_global_error_counter_solaris () =
  (* the global counter accumulates across segments; an ambiguous ACK
     (of a retransmitted segment) does not reset it *)
  let sim, net, _client, _server, conn, _sconn =
    establish ~client_profile:Profile.solaris_23 ()
  in
  (* block the return path so ACKs vanish; let a few timeouts happen *)
  Network.block net ~src:"server" ~dst:"client";
  Tcp.send conn "m1";
  Sim.run ~until:(Vtime.sec 3) sim;
  let mid_counter = Tcp.error_counter conn in
  Alcotest.(check bool) "counter grew" true (mid_counter >= 2);
  (* unblock: the ACK that arrives is for a retransmitted segment *)
  Network.unblock net ~src:"server" ~dst:"client";
  Sim.run ~until:(Vtime.sec 6) sim;
  Alcotest.(check bool) "ambiguous ack left counter alone" true
    (Tcp.error_counter conn >= mid_counter);
  (* a fresh segment acked cleanly resets it *)
  Tcp.send conn "m2";
  Sim.run ~until:(Vtime.sec 10) sim;
  Alcotest.(check int) "unambiguous ack reset counter" 0 (Tcp.error_counter conn)

let test_bsd_counter_resets_on_any_ack () =
  let sim, net, _client, _server, conn, _sconn = establish () in
  Network.block net ~src:"server" ~dst:"client";
  Tcp.send conn "m1";
  Sim.run ~until:(Vtime.sec 40) sim;
  Alcotest.(check bool) "retransmissions happened" true (Tcp.total_retransmits conn >= 2);
  Network.unblock net ~src:"server" ~dst:"client";
  Tcp.send conn "m2";
  Sim.run ~until:(Vtime.sec 120) sim;
  (* per-segment counting: new segment starts from scratch, connection healthy *)
  Alcotest.(check string) "still established" "ESTABLISHED"
    (Tcp.state_to_string (Tcp.state conn));
  Alcotest.(check int) "segment retries back to 0" 0 (Tcp.segment_retries conn)

let test_syn_retransmitted () =
  let sim, net, client, _server = setup () in
  Network.block net ~src:"client" ~dst:"server";
  let conn = Tcp.connect client.tcp ~dst:"server" ~dst_port:80 () in
  ignore
    (Sim.schedule sim ~delay:(Vtime.sec 15) (fun () ->
         Network.unblock net ~src:"client" ~dst:"server"));
  Sim.run ~until:(Vtime.sec 120) sim;
  Alcotest.(check string) "eventually established" "ESTABLISHED"
    (Tcp.state_to_string (Tcp.state conn));
  Alcotest.(check bool) "SYN was retransmitted" true (Tcp.total_retransmits conn >= 1)

(* ------------------------------------------------------------------ *)
(* Congestion control                                                 *)
(* ------------------------------------------------------------------ *)

let test_slow_start_growth () =
  let sim, _net, _client, _server, conn, sconn = establish () in
  ignore sconn;
  Alcotest.(check int) "initial cwnd = 1 MSS" 512 (Tcp.congestion_window conn);
  (* a large burst: the first flight is limited by cwnd, then each ACK
     opens the window *)
  Tcp.send conn (String.make 3000 'x');
  Sim.run sim;
  Alcotest.(check bool) "cwnd grew with the acks" true
    (Tcp.congestion_window conn >= 2048)

let test_timeout_collapses_cwnd () =
  let sim, net, _client, _server, conn, sconn = establish () in
  ignore sconn;
  Tcp.send conn (String.make 2000 'x');
  Sim.run sim;
  let grown = Tcp.congestion_window conn in
  Alcotest.(check bool) "grown before fault" true (grown > 512);
  Network.block net ~src:"server" ~dst:"client";
  Tcp.send conn (String.make 1000 'y');
  Sim.run ~until:(Vtime.add (Sim.now sim) (Vtime.sec 30)) sim;
  Alcotest.(check int) "cwnd collapsed to 1 MSS" 512 (Tcp.congestion_window conn);
  Alcotest.(check bool) "ssthresh halved below old cwnd" true
    (Tcp.slow_start_threshold conn < grown)

let test_cwnd_limits_first_flight () =
  (* with cc on, a big burst leaves in flight only cwnd bytes at t=0 *)
  let sim, _net, _client, _server, conn, sconn = establish () in
  ignore sconn;
  Tcp.send conn (String.make 4000 'x');
  (* before any ACK returns, at most one MSS is outstanding *)
  Alcotest.(check int) "one MSS in flight" 512
    (Seq32.diff (Tcp.snd_nxt conn) (Tcp.snd_una conn));
  Sim.run sim

let test_cc_disabled_bursts () =
  let profile = { Profile.xkernel with Profile.congestion_control = false } in
  let sim, _net, _client, _server, conn, sconn =
    establish ~client_profile:profile ()
  in
  ignore sconn;
  Tcp.send conn (String.make 4000 'x');
  Alcotest.(check int) "whole burst in flight (limited by rcv window)" 4000
    (Seq32.diff (Tcp.snd_nxt conn) (Tcp.snd_una conn));
  Sim.run sim

(* ------------------------------------------------------------------ *)
(* TCP stub                                                           *)
(* ------------------------------------------------------------------ *)

let test_stub_recognition () =
  let s = Tcp_stub.stub in
  let msg = Segment.to_message (seg ~payload:"xyz" ~seq:42 ()) ~dst:"peer" in
  Alcotest.(check string) "type" "DATA" (s.Pfi_core.Stubs.msg_type msg);
  Alcotest.(check (option string)) "seq field" (Some "42")
    (s.Pfi_core.Stubs.get_field msg "seq");
  Alcotest.(check (option string)) "len field" (Some "3")
    (s.Pfi_core.Stubs.get_field msg "len");
  Alcotest.(check (option string)) "flags" (Some "A")
    (s.Pfi_core.Stubs.get_field msg "flags")

let test_stub_set_field_reencodes () =
  let s = Tcp_stub.stub in
  let msg = Segment.to_message (seg ~seq:42 ()) ~dst:"peer" in
  Alcotest.(check bool) "set ok" true (s.Pfi_core.Stubs.set_field msg "seq" "999");
  (* the re-encoded segment must still checksum-validate *)
  match Segment.of_message msg with
  | Ok decoded -> Alcotest.(check int) "new seq" 999 decoded.Segment.seq
  | Error e -> Alcotest.failf "re-encoded segment invalid: %s" e

let test_stub_generate_spurious_ack () =
  let s = Tcp_stub.stub in
  match
    s.Pfi_core.Stubs.generate
      [ ("type", "ACK"); ("sport", "1"); ("dport", "2"); ("seq", "10");
        ("ack", "20"); ("window", "512"); ("dst", "server") ]
  with
  | Some msg ->
    Alcotest.(check string) "kind" "ACK" (s.Pfi_core.Stubs.msg_type msg);
    Alcotest.(check (option string)) "addressed" (Some "server")
      (Pfi_stack.Message.get_attr msg Network.dst_attr)
  | None -> Alcotest.fail "generate failed"

let suite =
  [
    Alcotest.test_case "seq32 wraparound" `Quick test_seq32_wraparound;
    Alcotest.test_case "seq32 window" `Quick test_seq32_window;
    QCheck_alcotest.to_alcotest prop_seq32_diff_inverse;
    Alcotest.test_case "segment roundtrip" `Quick test_segment_roundtrip;
    Alcotest.test_case "segment checksum" `Quick test_segment_checksum_detects_corruption;
    Alcotest.test_case "segment kinds" `Quick test_segment_kinds;
    QCheck_alcotest.to_alcotest prop_segment_roundtrip;
    Alcotest.test_case "handshake" `Quick test_handshake;
    Alcotest.test_case "data transfer" `Quick test_data_transfer;
    Alcotest.test_case "large transfer segmented" `Quick test_large_transfer_segmented;
    Alcotest.test_case "bidirectional" `Quick test_bidirectional;
    Alcotest.test_case "retransmission recovers loss" `Quick test_retransmission_recovers_loss;
    Alcotest.test_case "backoff to 64s then RST (BSD)" `Quick test_retransmission_backoff_and_reset;
    Alcotest.test_case "9 retries, no RST (Solaris)" `Quick test_solaris_no_rst_fewer_retries;
    Alcotest.test_case "rtt adaptation (BSD)" `Quick test_rtt_adaptation;
    Alcotest.test_case "rtt ignored (Solaris)" `Quick test_solaris_ignores_rtt;
    Alcotest.test_case "out-of-order queued" `Quick test_out_of_order_queued;
    Alcotest.test_case "zero window persist probing" `Quick test_zero_window_and_persist;
    Alcotest.test_case "keepalive BSD" `Quick test_keepalive_bsd;
    Alcotest.test_case "keepalive acked repeats" `Quick test_keepalive_acked_repeats;
    Alcotest.test_case "keepalive Solaris" `Quick test_keepalive_solaris;
    Alcotest.test_case "orderly close" `Quick test_orderly_close;
    Alcotest.test_case "abort sends RST" `Quick test_abort_sends_rst;
    Alcotest.test_case "stray segment gets RST" `Quick test_stray_segment_gets_rst;
    Alcotest.test_case "corrupted segment dropped" `Quick test_corrupted_segment_dropped;
    Alcotest.test_case "global error counter (Solaris)" `Quick test_global_error_counter_solaris;
    Alcotest.test_case "per-segment counter (BSD)" `Quick test_bsd_counter_resets_on_any_ack;
    Alcotest.test_case "SYN retransmitted" `Quick test_syn_retransmitted;
    Alcotest.test_case "slow start growth" `Quick test_slow_start_growth;
    Alcotest.test_case "timeout collapses cwnd" `Quick test_timeout_collapses_cwnd;
    Alcotest.test_case "cwnd limits first flight" `Quick test_cwnd_limits_first_flight;
    Alcotest.test_case "cc disabled bursts" `Quick test_cc_disabled_bursts;
    Alcotest.test_case "stub recognition" `Quick test_stub_recognition;
    Alcotest.test_case "stub set_field re-encodes" `Quick test_stub_set_field_reencodes;
    Alcotest.test_case "stub generates spurious ACK" `Quick test_stub_generate_spurious_ack;
  ]
