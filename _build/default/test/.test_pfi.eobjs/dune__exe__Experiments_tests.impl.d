test/experiments_tests.ml: Ablations Alcotest Float Gmp_experiments List Pfi_engine Pfi_experiments Pfi_tcp Printf Profile Report String Tcp_experiments Vtime
