test/script_tests.ml: Alcotest Ast Expr Gen Interp List Parser Pfi_script Printf QCheck QCheck_alcotest Script Tcl_list
