test/netsim_tests.ml: Alcotest Driver Layer List Message Network Pfi_engine Pfi_netsim Pfi_stack Sim Vtime
