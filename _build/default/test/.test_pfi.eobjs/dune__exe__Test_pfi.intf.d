test/test_pfi.mli:
