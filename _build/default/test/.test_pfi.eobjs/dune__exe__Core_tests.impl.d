test/core_tests.ml: Alcotest Blackboard Bytes Char Driver Failure_models Layer List Message Network Pfi_core Pfi_engine Pfi_layer Pfi_netsim Pfi_stack Printf Sim String Stubs Trace Vtime
