test/engine_tests.ml: Alcotest Event_queue Fmt Int64 List Pfi_engine QCheck QCheck_alcotest Rng Sim Timer Trace Vtime
