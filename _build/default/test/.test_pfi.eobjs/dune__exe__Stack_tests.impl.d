test/stack_tests.ml: Alcotest Bytes Bytes_codec Char Driver Layer List Message Pfi_stack QCheck QCheck_alcotest
