(* Automatic test generation (the paper's future work, §6): a protocol
   specification is turned into a systematic campaign of generated
   filter scripts, run against the alternating-bit protocol — once
   against the correct implementation, once against one with a
   re-implanted bug (the sender ignores the ACK's bit).

   Run with:  dune exec examples/generated_campaign.exe *)

open Pfi_testgen

let () =
  print_endline "== generated fault campaign for the ABP specification ==\n";
  print_endline "one of the generated scripts (drop the first 5 MSG frames):";
  print_endline (Generator.script_of_fault (Generator.Drop_first ("MSG", 5)));

  print_endline "--- correct implementation ---";
  let ok = Abp_harness.run_campaign () in
  print_string (Campaign.table ok);

  print_endline "\n--- implementation with the ignore-ack-bit bug ---";
  let buggy = Abp_harness.run_campaign ~bug_ignore_ack_bit:true () in
  (* print only the interesting rows *)
  let bad = Campaign.violations buggy in
  print_string (Campaign.table bad);
  if bad <> [] then
    print_endline
      "\nthe campaign found the implanted defect: under an arbitrary\n\
       (byzantine) channel a stale duplicate ACK makes the buggy sender\n\
       abandon an in-flight frame, which a coinciding drop then loses."
