(* TCP probing: two of the paper's techniques against a live vendor TCP.

   1. The Table 1 experiment for one vendor: let 30 packets through,
      then drop everything and watch the retransmission schedule.
   2. A probe the passive-monitoring approaches cannot do: inject a
      spurious ACK from the PFI layer and watch the vendor's reaction.

   Run with:  dune exec examples/tcp_probing.exe *)

open Pfi_engine
open Pfi_core
open Pfi_tcp
open Pfi_experiments

let () =
  let profile = Profile.sunos_413 in
  Printf.printf "=== probing %s ===\n\n" profile.Profile.name;

  (* --- 1. retransmission schedule under total silence ------------- *)
  let rig = Tcp_rig.make ~profile () in
  let vconn, _xc = Tcp_rig.connect rig in
  Pfi_layer.set_receive_filter rig.Tcp_rig.pfi
    {|
if {![info exists count]} { set count 0 }
incr count
if {$count > 30} {
  log exp.drop [msg_field cur_msg seq]
  xDrop cur_msg
}
|};
  Tcp_rig.feed_vendor rig ~conn:vconn ~chunk:128 ~every:(Vtime.ms 400) ~count:60;
  Sim.run ~until:(Vtime.hours 1) rig.Tcp_rig.sim;
  let entries = Tcp_rig.drop_log rig ~tag:"exp.drop" in
  let seq, times = Tcp_rig.busiest_seq entries in
  Printf.printf "dropped segment seq=%d was (re)transmitted %d times:\n" seq
    (List.length times);
  List.iteri
    (fun i interval ->
      Printf.printf "  retransmission %2d after %6.1f s\n" (i + 1)
        (Vtime.to_sec_f interval))
    (Tcp_rig.intervals times);
  Printf.printf "vendor closed the connection: %s, RST count: %d\n\n"
    (match Tcp.close_reason vconn with Some r -> r | None -> "still open")
    (Trace.count ~node:Tcp_rig.vendor_node ~tag:"tcp.rst-sent"
       (Sim.trace rig.Tcp_rig.sim));

  (* --- 2. spurious-ACK injection ----------------------------------- *)
  let rig2 = Tcp_rig.make ~profile () in
  let vconn2, xc2 = Tcp_rig.connect rig2 in
  ignore xc2;
  (* generate an ACK claiming data the x-Kernel never received; the
     PFI layer can do this because an ACK carries no protocol state *)
  Pfi_layer.set_receive_filter rig2.Tcp_rig.pfi
    {|
if {[msg_type cur_msg] == "DATA" && ![info exists probed]} {
  set probed 1
  set fake_ack [expr {[msg_field cur_msg seq] + 9999}]
  set probe [msg_gen type ACK sport [msg_field cur_msg dport] \
                 dport [msg_field cur_msg sport] \
                 seq [msg_field cur_msg ack] ack $fake_ack window 4096 \
                 dst vendor]
  log probe.injected "spurious ack=$fake_ack"
  inject_down $probe
}
|};
  Tcp.send vconn2 "some data the vendor sends";
  Sim.run ~until:(Vtime.add (Sim.now rig2.Tcp_rig.sim) (Vtime.sec 30)) rig2.Tcp_rig.sim;
  print_endline "spurious-ACK probe (acknowledging data never sent):";
  List.iter
    (fun e -> Printf.printf "  injected: %s\n" (Trace.detail e))
    (Trace.find ~tag:"probe.injected" (Sim.trace rig2.Tcp_rig.sim));
  Printf.printf
    "  vendor ignored the out-of-range ACK and stayed %s (snd_una=%d)\n"
    (Tcp.state_to_string (Tcp.state vconn2))
    (Tcp.snd_una vconn2)
