(* Quickstart: splice a PFI layer into a two-node stack and run the
   paper's canonical filter script — "this script drops all ACK
   messages" — against live traffic.

   Run with:  dune exec examples/quickstart.exe *)

open Pfi_engine
open Pfi_stack
open Pfi_netsim
open Pfi_core

(* A toy protocol: the first byte tags the message type. *)
let toy_stub =
  { Stubs.protocol = "toy";
    msg_type =
      (fun msg ->
        match Message.peek msg 1 with
        | b when Bytes.length b = 1 && Bytes.get b 0 = 'A' -> "ACK"
        | b when Bytes.length b = 1 && Bytes.get b 0 = 'D' -> "DATA"
        | _ -> "?");
    describe = (fun msg -> "toy " ^ Message.to_string msg);
    get_field = (fun _ _ -> None);
    set_field = (fun _ _ _ -> false);
    generate = (fun _ -> None);
    fields = (fun _ -> []) }

let () =
  (* 1. a simulation and a network *)
  let sim = Sim.create ~seed:42L () in
  let net = Network.create sim in

  (* 2. two nodes; the sender gets a PFI layer between its application
        (driver) and the network device *)
  let make name ~with_pfi =
    let driver = Driver.create ~node:name () in
    let device = Network.attach net ~node:name in
    let pfi =
      if with_pfi then Some (Pfi_layer.create ~sim ~node:name ~stub:toy_stub ())
      else None
    in
    (match pfi with
     | Some pfi -> Layer.stack [ Driver.layer driver; Pfi_layer.layer pfi; device ]
     | None -> Layer.stack [ Driver.layer driver; device ]);
    (driver, pfi)
  in
  let alice, alice_pfi = make "alice" ~with_pfi:true in
  let bob, _ = make "bob" ~with_pfi:false in
  Driver.set_on_receive bob (fun msg ->
      Printf.printf "  bob received: %s\n" (Message.to_string msg));

  (* 3. the paper's example filter, nearly verbatim *)
  let pfi = Option.get alice_pfi in
  Pfi_layer.set_send_filter pfi
    {|
# This script drops all ACK messages.
set type [msg_type cur_msg]
if {$type == "ACK"} {
  msg_log cur_msg quickstart.dropped
  xDrop cur_msg
}
|};

  (* 4. traffic: DATA passes, ACKs vanish *)
  let send text =
    let msg = Message.of_string text in
    Message.set_attr msg Network.dst_attr "bob";
    Driver.send alice msg
  in
  print_endline "alice sends: D:hello  A:ack-1  D:world  A:ack-2";
  send "D:hello";
  send "A:ack-1";
  send "D:world";
  send "A:ack-2";
  Sim.run sim;

  (* 5. what the PFI layer saw *)
  let stats = Pfi_layer.send_stats pfi in
  Printf.printf "PFI send filter: %d passed, %d dropped\n"
    stats.Pfi_layer.passed stats.Pfi_layer.dropped;
  print_endline "trace of dropped messages:";
  List.iter
    (fun e -> Printf.printf "  %s\n" (Trace.detail e))
    (Trace.find ~tag:"quickstart.dropped" (Sim.trace sim))
